"""Unit tests for the Verilog writer helpers."""

import pytest

from repro.errors import HdlGenError
from repro.hdlgen import (
    balanced_blocks,
    check_identifier,
    count_occurrences,
    instantiate,
    port_decl,
    render_parameters,
    vbits,
)


def test_check_identifier():
    assert check_identifier("cam_cell") == "cam_cell"
    assert check_identifier("_x$1") == "_x$1"
    with pytest.raises(HdlGenError, match="invalid"):
        check_identifier("1bad")
    with pytest.raises(HdlGenError, match="invalid"):
        check_identifier("has space")
    with pytest.raises(HdlGenError, match="keyword"):
        check_identifier("module")


def test_vbits():
    assert vbits(48, 0) == "48'h000000000000"
    assert vbits(48, 0xBEEF) == "48'h00000000beef"
    assert vbits(4, 15) == "4'hf"
    with pytest.raises(HdlGenError):
        vbits(4, 16)
    with pytest.raises(HdlGenError):
        vbits(0, 0)
    with pytest.raises(HdlGenError):
        vbits(8, -1)


def test_port_decl():
    assert port_decl("input", "clk") == "input wire clk"
    assert port_decl("output", "data", 48) == "output wire [47:0] data"
    with pytest.raises(HdlGenError):
        port_decl("in", "clk")
    with pytest.raises(HdlGenError):
        port_decl("input", "clk", 0)


def test_render_parameters():
    text = render_parameters({"WIDTH": 32, "MODE": "FAST"})
    assert "parameter WIDTH = 32" in text
    assert 'parameter MODE = "FAST"' in text


def test_instantiate():
    text = instantiate(
        "cam_cell", "cell_0",
        {"DATA_WIDTH": 32},
        [("clk", "clk"), ("match", "match_wire[0]")],
    )
    assert "cam_cell #(" in text
    assert ".DATA_WIDTH(32)" in text
    assert ".match(match_wire[0])" in text
    with pytest.raises(HdlGenError):
        instantiate("bad name", "i0", {}, [])


def test_count_occurrences_word_boundaries():
    source = "module x; endmodule // module"
    assert count_occurrences(source, "module") == 2
    assert count_occurrences(source, "endmodule") == 1


def test_balanced_blocks():
    good = "module m; always begin end endmodule"
    assert balanced_blocks(good)
    assert not balanced_blocks("module m; begin endmodule")
    assert not balanced_blocks("module m; endmodule endmodule")
    assert not balanced_blocks("case (x) endcase endcase")
