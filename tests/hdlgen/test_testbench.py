"""Unit tests for the self-checking testbench generator."""

import pytest

from repro.core import BlockConfig, CellConfig
from repro.errors import HdlGenError
from repro.hdlgen import (
    balanced_blocks,
    generate_block_testbench,
    generate_cell_testbench,
)


def block_config(size=16, width=32, bus=128, buffered=None):
    return BlockConfig(
        cell=CellConfig(data_width=width), block_size=size,
        bus_width=bus, output_buffer=buffered,
    )


def test_cell_tb_structure():
    tb = generate_cell_testbench(32)
    assert "module cam_cell_tb" in tb
    assert "cam_cell #(" in tb
    assert "$finish" in tb
    assert tb.count("expect(") >= 2
    assert "repeat (2) @(posedge clk);" in tb  # 2-cycle search latency


def test_cell_tb_respects_width():
    tb = generate_cell_testbench(16)
    assert ".DATA_WIDTH(16)" in tb
    assert "48'hffffffff0000" in tb  # width mask for 16 bits


def test_block_tb_structure():
    tb = generate_block_testbench(block_config())
    assert "module cam_block_tb" in tb
    assert "cam_block #(" in tb
    assert "localparam LATENCY    = 3;" in tb
    assert tb.count("search_and_check(") >= 4  # stored words + a miss
    assert "PASS" in tb and "FAIL" in tb


def test_block_tb_expectations_come_from_model():
    """Stored words at addresses 0..2 plus one guaranteed miss."""
    tb = generate_block_testbench(block_config(), beat_words=3)
    assert "1'b1, 0," in tb
    assert "1'b1, 1," in tb
    assert "1'b1, 2," in tb
    assert "1'b0, 0," in tb  # the miss probe


def test_block_tb_buffered_latency():
    tb = generate_block_testbench(block_config(buffered=True))
    assert "localparam LATENCY    = 4;" in tb
    assert ".OUTPUT_BUFFER(1)" in tb


def test_block_tb_beat_word_validation():
    with pytest.raises(HdlGenError, match="beat_words"):
        generate_block_testbench(block_config(bus=128), beat_words=9)


def test_testbenches_are_balanced_verilog():
    assert balanced_blocks(generate_cell_testbench())
    assert balanced_blocks(generate_block_testbench(block_config()))
