"""Unit tests for the template-driven Verilog generator."""

import pytest

from repro.core import BlockConfig, CamType, CellConfig, unit_for_entries
from repro.dsp import CAM_OPMODE
from repro.hdlgen import (
    balanced_blocks,
    count_occurrences,
    generate_block,
    generate_cell,
    generate_project,
    generate_unit,
    write_project,
)


def small_unit(cam_type=CamType.BINARY):
    return unit_for_entries(
        512, block_size=128, data_width=32, bus_width=512, cam_type=cam_type
    )


# ----------------------------------------------------------------------
# cell
# ----------------------------------------------------------------------
def test_cell_module_structure():
    source = generate_cell(CellConfig(data_width=32))
    assert "module cam_cell" in source
    assert balanced_blocks(source)
    assert count_occurrences(source, "DSP48E2") == 2  # comment + instance
    assert "DSP48E2 #(" in source
    assert 'USE_PATTERN_DETECT("PATDET")' in source


def test_cell_encodes_cam_opmode():
    source = generate_cell(CellConfig(data_width=32))
    assert f"9'b{CAM_OPMODE:09b}" in source
    assert "4'b0100" in source  # ALUMODE XOR


def test_cell_mask_covers_unused_width():
    source = generate_cell(CellConfig(data_width=32))
    assert "48'hffff00000000" in source
    full = generate_cell(CellConfig(data_width=48))
    assert "48'h000000000000" in full


# ----------------------------------------------------------------------
# block
# ----------------------------------------------------------------------
def test_block_parameters_substituted():
    block = BlockConfig(cell=CellConfig(data_width=32), block_size=128,
                        bus_width=512)
    source = generate_block(block)
    assert "parameter BLOCK_SIZE     = 128" in source
    assert "parameter BUS_WIDTH      = 512" in source
    assert "parameter WORDS_PER_BEAT = 16" in source
    assert "parameter OUTPUT_BUFFER  = 0" in source
    assert balanced_blocks(source)


def test_block_buffer_parameter():
    block = BlockConfig(cell=CellConfig(data_width=32), block_size=256)
    assert "parameter OUTPUT_BUFFER  = 1" in generate_block(block)
    assert "parameter OUTPUT_BUFFER  = 1" in generate_block(
        BlockConfig(cell=CellConfig(data_width=32), block_size=64),
        buffered=True,
    )


def test_block_instantiates_cells():
    block = BlockConfig(cell=CellConfig(data_width=32), block_size=64,
                        bus_width=512)
    source = generate_block(block)
    assert count_occurrences(source, "cam_cell") >= 1
    assert "generate" in source and "endgenerate" in source


# ----------------------------------------------------------------------
# unit / project
# ----------------------------------------------------------------------
def test_unit_structure():
    source = generate_unit(small_unit())
    assert "module cam_unit" in source
    assert "parameter NUM_BLOCKS   = 4" in source
    assert "routing_table" in source
    assert balanced_blocks(source)


def test_project_has_three_files():
    project = generate_project(small_unit())
    assert set(project) == {"cam_cell.v", "cam_block.v", "cam_unit.v"}
    for source in project.values():
        assert source.startswith("//")
        assert "{" + "0}" not in source


def test_write_project(tmp_path):
    written = write_project(small_unit(), tmp_path / "hdl")
    assert len(written) == 3
    for name, path in written.items():
        text = open(path).read()
        assert name.replace(".v", "") in text


def test_unit_buffer_tracks_size_threshold():
    small = generate_unit(small_unit())
    assert ".OUTPUT_BUFFER(0)" in small
    big = generate_unit(
        unit_for_entries(2048, block_size=128, data_width=32)
    )
    assert ".OUTPUT_BUFFER(1)" in big
