"""Smoke-run the fast example scripts end to end.

Each example is executed as a subprocess with a fresh interpreter, so
these tests catch import breakage, API drift, and assertion failures
inside the examples themselves. The slow exhibits (full Table IX) are
exercised by the benches instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

FAST_EXAMPLES = [
    ("quickstart.py", "total simulated cycles"),
    ("database_range_index.py", "scan agrees"),
    ("multi_query_scaling.py", "keys/cycle"),
    ("verilog_generation.py", "lines of Verilog"),
]


def run_example(name: str) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert completed.returncode == 0, (
        f"{name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    return completed.stdout


@pytest.mark.parametrize("name,marker", FAST_EXAMPLES)
def test_example_runs(name, marker):
    output = run_example(name)
    assert marker in output


def test_packet_classifier_example():
    output = run_example("packet_classifier.py")
    assert "rack-42" in output
    assert "deny" in output and "allow" in output


def test_verilog_generation_writes_files(tmp_path):
    path = os.path.join(EXAMPLES_DIR, "verilog_generation.py")
    completed = subprocess.run(
        [sys.executable, path, str(tmp_path)],
        capture_output=True, text=True, timeout=120,
    )
    assert completed.returncode == 0
    assert (tmp_path / "cam_unit.v").exists()
