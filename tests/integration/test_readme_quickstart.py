"""Guard the README's code snippets: they must run exactly as printed."""

from repro.core import (
    CamSession,
    CamType,
    range_entry,
    ternary_entry_from_pattern,
    unit_for_entries,
)


def test_readme_quickstart_snippet():
    # Verbatim from README.md "Quickstart".
    session = CamSession(unit_for_entries(
        256, block_size=64, data_width=32, bus_width=512,
        cam_type=CamType.BINARY, default_groups=2,
    ))

    session.update([10, 20, 30, 40])
    hit = session.search_one(30)
    assert hit.address == 2

    results = session.search([10, 99])
    assert results[0].hit and not results[1].hit
    session.delete(20)
    assert session.cycle > 0
    assert not session.contains(20)


def test_readme_ternary_range_snippet():
    session = CamSession(unit_for_entries(
        256, block_size=64, data_width=32, bus_width=512,
        cam_type=CamType.TERNARY, default_groups=2,
    ))
    session.update([ternary_entry_from_pattern("1010_XXXX", 32)])
    assert session.contains(0b1010_1111)

    range_session = CamSession(unit_for_entries(
        256, block_size=64, data_width=32, bus_width=512,
        cam_type=CamType.RANGE,
    ))
    range_session.update([range_entry(0x100, 0x1FF, 32)])
    assert range_session.contains(0x1AB)


def test_package_docstring_snippet():
    # Verbatim from repro/__init__.py.
    session = CamSession(unit_for_entries(256, block_size=64,
                                          data_width=32, default_groups=2))
    session.update([10, 20, 30])
    result = session.search_one(20)
    assert result.hit and result.address == 1
