"""Integration tests spanning multiple subsystems."""

import pytest

from repro.apps.packet import LpmRouter, Packet, PacketClassifier, Rule
from repro.apps.tc import (
    CamIntersector,
    CamTriangleCounter,
    MergeTriangleCounter,
    merge_intersect,
    run_dataset,
)
from repro.baselines import BramCam, LutRamCam
from repro.core import (
    CamSession,
    CamType,
    ReferenceCam,
    binary_entry,
    unit_for_entries,
)
from repro.graph import count_triangles, count_triangles_matrix, power_law
from repro.hdlgen import generate_project


def test_cam_against_every_baseline_family():
    """Our DSP CAM, the golden model and all baselines agree on one
    shared workload (binary, 16-bit)."""
    stored = [3, 141, 59, 26, 535, 897, 93, 238]
    probes = stored + [1000, 0, 500]
    entries = [binary_entry(v, 16) for v in stored]

    session = CamSession(unit_for_entries(
        64, block_size=16, data_width=16, bus_width=128, default_groups=2
    ))
    session.update(entries)
    reference = ReferenceCam(32)
    reference.update(entries)
    lut = LutRamCam(32, 16)
    lut.update(entries)
    bram = BramCam(32, 16)
    bram.update(entries)

    for probe in probes:
        expected = reference.search(probe)
        assert session.search_one(probe).match_vector == expected.match_vector
        assert lut.search(probe).match_vector == expected.match_vector
        assert bram.search(probe).match_vector == expected.match_vector


def test_tc_pipeline_counts_agree_across_engines():
    """Reference forward count == matrix count == per-edge CAM engine."""
    graph = power_law(200, 800, triangle_fraction=0.5, seed=13)
    forward = count_triangles(graph)
    matrix = count_triangles_matrix(graph)
    assert forward == matrix

    # Recount with the real CAM engine over the oriented edges.
    oriented = graph.oriented()
    engine = CamIntersector(total_entries=256, block_size=64)
    src, dst = oriented.edge_endpoints()
    cam_total = 0
    for u, v in list(zip(src.tolist(), dst.tolist()))[:60]:
        list_u = oriented.neighbors(u).tolist()
        list_v = oriented.neighbors(v).tolist()
        if not list_u or not list_v:
            continue
        got, _ = engine.intersect(list_u, list_v)
        expected, _ = merge_intersect(sorted(list_u), sorted(list_v))
        assert got == expected
        cam_total += got
    assert cam_total <= forward


def test_table_ix_row_end_to_end():
    row = run_dataset("roadNet-TX", max_edges=8_000, seed=0)
    assert row.speedup > 1.0
    assert row.triangles >= 0


def test_cost_models_consistent_with_measured_latency():
    """The TC cost model's frequency/config must match a real unit."""
    model = CamTriangleCounter()
    session = CamSession(model.config)
    assert session.unit.search_latency == model.config.search_latency
    assert model.config.search_latency == 8  # 2K entries -> buffered


def test_hdl_matches_simulated_configuration():
    """Generated RTL parameters mirror the simulated unit's config."""
    config = unit_for_entries(512, block_size=128, data_width=32)
    project = generate_project(config)
    unit_v = project["cam_unit.v"]
    assert f"parameter NUM_BLOCKS   = {config.num_blocks}" in unit_v
    assert f"parameter BLOCK_SIZE   = {config.block.block_size}" in unit_v
    assert f"parameter DATA_WIDTH   = {config.data_width}" in unit_v


def test_router_and_classifier_share_one_story():
    """Networking pipeline: route lookup then ACL on the same packet."""
    router = LpmRouter(capacity=64, block_size=64)
    router.add_route("10.0.0.0/8", "internal")
    router.add_route("0.0.0.0/0", "upstream")
    router.compile()

    acl = PacketClassifier(capacity=64, block_size=64)
    acl.add_rule(Rule("no-telnet", "deny", protocol=6, port_range=(23, 23)))
    acl.add_rule(Rule("permit", "allow"))

    route = router.lookup("10.20.30.40")
    assert route.next_hop == "internal"
    verdict = acl.classify(Packet(protocol=6, src_tag=0, dst_tag=1, dst_port=23))
    assert verdict.action == "deny"


def test_multi_query_scales_throughput():
    """Doubling the group count roughly halves batch search cycles."""
    results = {}
    for groups in (1, 4):
        session = CamSession(unit_for_entries(
            256, block_size=64, data_width=32, default_groups=groups
        ))
        session.update(list(range(48)))
        session.search(list(range(48)))
        results[groups] = session.last_search_stats.cycles
    assert results[4] < results[1] / 2.5


def test_merge_and_cam_models_cross_over_with_degree():
    """The CAM's advantage grows with list length -- the paper's thesis."""
    from repro.graph import CSRGraph

    def ratio(leaves):
        star = CSRGraph.from_edges([(0, i) for i in range(1, leaves + 1)])
        merge = MergeTriangleCounter().cost(star).total_cycles
        cam = CamTriangleCounter().cost(star).total_cycles
        return merge / cam

    assert ratio(512) > ratio(64) > ratio(8)
