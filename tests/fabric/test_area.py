"""Unit tests for the calibrated area model."""

import pytest

from repro.errors import ConfigError
from repro.fabric import (
    BLOCK_LUT_ANCHORS,
    UNIT_LUT_ANCHORS,
    block_ff_cost,
    block_lut_cost,
    block_resources,
    unit_lut_cost,
    unit_resources,
)
from repro.fabric.area import provenance


def test_block_lut_reproduces_table_vi_anchors():
    for size, luts in BLOCK_LUT_ANCHORS.items():
        assert block_lut_cost(size) == luts


def test_unit_lut_reproduces_table_vii_anchors():
    for entries, luts in UNIT_LUT_ANCHORS.items():
        assert unit_lut_cost(entries) == luts


def test_block_lut_monotone_in_size():
    sizes = [32, 64, 128, 256, 512, 1024]
    costs = [block_lut_cost(s) for s in sizes]
    assert costs == sorted(costs)


def test_unit_lut_roughly_linear_per_entry():
    per_entry_small = unit_lut_cost(1024) / 1024
    per_entry_large = unit_lut_cost(8192) / 8192
    assert 3.0 < per_entry_small < 6.0
    assert 3.0 < per_entry_large < 6.0


def test_narrow_bus_costs_fewer_block_luts():
    assert block_lut_cost(128, bus_width=128) < block_lut_cost(128, bus_width=512)


def test_block_lut_validation():
    with pytest.raises(ConfigError):
        block_lut_cost(0)
    with pytest.raises(ConfigError):
        block_lut_cost(64, bus_width=0)


def test_unit_lut_requires_at_least_one_block():
    with pytest.raises(ConfigError):
        unit_lut_cost(128, block_size=256)


def test_block_resources_vector():
    vec = block_resources(256)
    assert vec.dsp == 256
    assert vec.lut == BLOCK_LUT_ANCHORS[256]
    assert vec.bram == 0
    assert vec.ff == block_ff_cost(256)


def test_unit_resources_include_interface_brams():
    vec = unit_resources(9728)
    assert vec.dsp == 9728
    assert vec.bram == 4  # bus-interface FIFOs (Table I footnote)
    assert vec.lut == UNIT_LUT_ANCHORS[9728]


def test_provenance_mentions_tables():
    note = provenance()
    assert "Table VI" in note and "Table VII" in note
