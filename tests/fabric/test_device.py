"""Unit tests for the device catalogue."""

import pytest

from repro.errors import DeviceError
from repro.fabric import ALVEO_U250, ALVEO_U250_SLR, DEVICES, ResourceVector, get_device


def test_u250_matches_table_iv():
    cap = ALVEO_U250.capacity
    assert cap.lut == 1_728_000
    assert cap.ff == 3_456_000
    assert cap.bram == 2_688
    assert cap.uram == 1_280
    assert cap.dsp == 12_288
    assert ALVEO_U250.slr_count == 4


def test_slr_slice_is_quarter():
    assert ALVEO_U250_SLR.capacity.dsp == ALVEO_U250.capacity.dsp // 4
    assert ALVEO_U250_SLR.capacity.lut == ALVEO_U250.capacity.lut // 4


def test_survey_platforms_present():
    for name in ("XC7V2000T", "Virtex-6", "XC6VLX760", "Kintex-7", "XCVU9P",
                  "Intel Arria V 5ASTD5"):
        assert name in DEVICES, name


def test_get_device_lookup_and_error():
    assert get_device("Alveo U250") is ALVEO_U250
    with pytest.raises(DeviceError, match="unknown device"):
        get_device("XC404")


def test_device_fits_and_utilisation():
    usage = ResourceVector(lut=72_178, bram=4, dsp=9_728)
    assert ALVEO_U250.fits(usage)
    util = ALVEO_U250.utilisation(usage)
    # The paper's headline: ~79% of DSPs with only a few percent of LUTs.
    assert util["dsp"] == pytest.approx(9_728 / 12_288)
    assert util["lut"] < 0.05


def test_max_paper_config_does_not_fit_one_slr():
    usage = ResourceVector(dsp=9_728)
    assert not ALVEO_U250_SLR.fits(usage)
