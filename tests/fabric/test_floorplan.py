"""Unit tests for the SLR floorplanner."""

import pytest

from repro.errors import CapacityError, DeviceError
from repro.fabric import (
    ALVEO_U250,
    fits_single_slr,
    floorplan_unit,
    max_single_slr_entries,
)


def test_case_study_unit_fits_one_slr():
    """The Table IX constraint: 2K entries inside a single SLR."""
    report = floorplan_unit(2048, 128)
    assert report.single_slr
    assert report.crossings == 0
    assert fits_single_slr(2048, 128)


def test_max_config_spans_multiple_slrs():
    report = floorplan_unit(9728, 256)
    assert report.slrs_used == 4
    assert report.crossings == 3
    assert sum(report.per_slr_dsp) == 9728


def test_spill_boundary():
    """One SLR holds 3072 DSPs; 3072 entries fit, 3073+ spill."""
    assert fits_single_slr(3072, 256)
    assert not fits_single_slr(3328, 256)
    report = floorplan_unit(3328, 256)
    assert report.slrs_used == 2
    assert report.crossings == 1


def test_contiguous_fill_order():
    report = floorplan_unit(4096, 256)  # 16 blocks, 12 per SLR
    assert report.assignments == [0] * 12 + [1] * 4


def test_budget_reserves_headroom():
    # With a 50% budget only 1536 DSPs/SLR are usable.
    assert not fits_single_slr(2048, 128, slr_dsp_budget=0.5)
    assert fits_single_slr(1536, 128, slr_dsp_budget=0.5)


def test_overflow_raises():
    with pytest.raises(CapacityError, match="exceed"):
        floorplan_unit(16384, 256)  # > 12288 DSPs


def test_block_bigger_than_slr_rejected():
    with pytest.raises(CapacityError, match="does not fit one SLR"):
        floorplan_unit(4096, 4096)


def test_validation():
    with pytest.raises(DeviceError):
        floorplan_unit(100, 256)  # not a multiple
    with pytest.raises(DeviceError):
        floorplan_unit(256, 256, slr_dsp_budget=0)


def test_max_single_slr_entries():
    assert max_single_slr_entries(256) == 3072
    assert max_single_slr_entries(128) == 3072
    assert max_single_slr_entries(256, slr_dsp_budget=0.5) == 1536
    # Consistency with the predicate.
    limit = max_single_slr_entries(256)
    assert fits_single_slr(limit, 256)
    assert not fits_single_slr(limit + 256, 256)


def test_frequency_droop_correlates_with_crossings():
    """Structural story: more SLR crossings, lower calibrated clock."""
    from repro.fabric import unit_frequency_mhz

    pairs = []
    for entries in (2048, 4096, 8192):
        crossings = floorplan_unit(entries, 256).crossings
        pairs.append((crossings, unit_frequency_mhz(entries, 48)))
    crossings_list = [c for c, _ in pairs]
    freqs = [f for _, f in pairs]
    assert crossings_list == sorted(crossings_list)
    assert freqs == sorted(freqs, reverse=True)
