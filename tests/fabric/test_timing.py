"""Unit tests for the calibrated frequency/throughput model."""

import pytest

from repro.errors import ConfigError
from repro.fabric import (
    TARGET_FREQUENCY_MHZ,
    block_frequency_mhz,
    search_throughput_mops,
    unit_frequency_mhz,
    update_throughput_mops,
)
from repro.fabric.timing import (
    UNIT_FREQ_ANCHORS_32,
    UNIT_FREQ_ANCHORS_48,
    provenance,
)


def test_block_frequency_is_target_for_table_vi_sizes():
    for size in (32, 64, 128, 256, 512):
        assert block_frequency_mhz(size) == TARGET_FREQUENCY_MHZ


def test_unit_frequency_48_reproduces_table_vii():
    for entries, freq in UNIT_FREQ_ANCHORS_48.items():
        assert unit_frequency_mhz(entries, 48) == pytest.approx(freq)


def test_unit_frequency_32_reproduces_table_viii():
    for entries, freq in UNIT_FREQ_ANCHORS_32.items():
        assert unit_frequency_mhz(entries, 32) == pytest.approx(freq)


def test_frequency_monotone_non_increasing_with_size():
    freqs = [unit_frequency_mhz(n, 48) for n in (512, 2048, 4096, 8192, 9728, 16384)]
    assert freqs == sorted(freqs, reverse=True)


def test_frequency_never_exceeds_target():
    for entries in (128, 256, 512, 5000, 20000):
        for width in (16, 32, 40, 48):
            assert unit_frequency_mhz(entries, width) <= TARGET_FREQUENCY_MHZ


def test_intermediate_width_between_curves():
    f32 = unit_frequency_mhz(4096, 32)
    f48 = unit_frequency_mhz(4096, 48)
    f40 = unit_frequency_mhz(4096, 40)
    assert min(f32, f48) <= f40 <= max(f32, f48)


def test_narrow_widths_use_32_bit_curve():
    assert unit_frequency_mhz(4096, 16) == unit_frequency_mhz(4096, 32)


def test_validation():
    with pytest.raises(ConfigError):
        unit_frequency_mhz(0, 32)
    with pytest.raises(ConfigError):
        unit_frequency_mhz(512, 0)
    with pytest.raises(ConfigError):
        unit_frequency_mhz(512, 49)
    with pytest.raises(ConfigError):
        block_frequency_mhz(0)


def test_update_throughput_matches_table_viii():
    # 512-bit bus, 32-bit words -> 16 words/beat.
    assert update_throughput_mops(512, 32) == pytest.approx(4800)
    assert update_throughput_mops(4096, 32) == pytest.approx(4064)
    assert update_throughput_mops(8192, 32) == pytest.approx(3840)


def test_search_throughput_matches_table_viii():
    assert search_throughput_mops(512, 32) == pytest.approx(300)
    assert search_throughput_mops(4096, 32) == pytest.approx(254)
    assert search_throughput_mops(8192, 32) == pytest.approx(240)


def test_provenance_mentions_tables():
    note = provenance()
    assert "Table VII" in note and "Table VIII" in note
