"""Unit tests for the anchored calibration curves."""

import pytest

from repro.errors import ConfigError
from repro.fabric import CalibratedCurve


def test_needs_anchors():
    with pytest.raises(ConfigError):
        CalibratedCurve({}, "empty")


def test_single_anchor_is_constant():
    curve = CalibratedCurve({64.0: 10.0}, "const")
    assert curve(1) == 10.0
    assert curve(64) == 10.0
    assert curve(4096) == 10.0


def test_exact_anchor_values():
    curve = CalibratedCurve({32.0: 100.0, 128.0: 300.0}, "t")
    assert curve(32) == pytest.approx(100.0)
    assert curve(128) == pytest.approx(300.0)
    assert curve.is_anchor(32)
    assert not curve.is_anchor(64)


def test_log_interpolation_midpoint():
    # log2 midpoint of 32 and 128 is 64.
    curve = CalibratedCurve({32.0: 100.0, 128.0: 300.0}, "t")
    assert curve(64) == pytest.approx(200.0)


def test_extrapolation_uses_boundary_slope():
    curve = CalibratedCurve({32.0: 100.0, 64.0: 200.0, 128.0: 250.0}, "t")
    # Below: slope 100 per octave; above: slope 50 per octave.
    assert curve(16) == pytest.approx(0.0)
    assert curve(256) == pytest.approx(300.0)


def test_clamp():
    curve = CalibratedCurve(
        {32.0: 100.0, 64.0: 300.0}, "t", clamp=(150.0, 250.0)
    )
    assert curve(32) == 150.0
    assert curve(64) == 250.0


def test_rejects_non_monotone_anchor_positions():
    with pytest.raises(ConfigError):
        CalibratedCurve({4.0: 1.0, 4.0000000001: 2.0}, "t",
                        transform=lambda x: 0.0)


def test_rejects_non_positive_input():
    curve = CalibratedCurve({32.0: 100.0}, "t")
    with pytest.raises(ConfigError):
        curve(0)


def test_domain_property():
    curve = CalibratedCurve({8.0: 1.0, 64.0: 2.0}, "t")
    assert curve.domain == (8.0, 64.0)
