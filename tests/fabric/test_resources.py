"""Unit tests for resource vectors and utilisation."""

import pytest

from repro.errors import DeviceError
from repro.fabric import ResourceVector, total


def test_negative_counts_rejected():
    with pytest.raises(DeviceError):
        ResourceVector(lut=-1)


def test_addition():
    a = ResourceVector(lut=10, dsp=2)
    b = ResourceVector(lut=5, bram=1)
    c = a + b
    assert c.lut == 15 and c.dsp == 2 and c.bram == 1


def test_scaling():
    v = ResourceVector(lut=3, dsp=1) * 4
    assert v.lut == 12 and v.dsp == 4
    assert (2 * ResourceVector(ff=5)).ff == 10
    with pytest.raises(DeviceError):
        ResourceVector() * -1


def test_as_dict_and_nonzero():
    v = ResourceVector(lut=7, dsp=3)
    assert v.as_dict()["lut"] == 7
    assert v.nonzero() == {"lut": 7, "dsp": 3}


def test_fits_in():
    cap = ResourceVector(lut=100, dsp=10)
    assert ResourceVector(lut=100, dsp=10).fits_in(cap)
    assert not ResourceVector(lut=101).fits_in(cap)
    assert not ResourceVector(bram=1).fits_in(cap)


def test_utilisation_fraction():
    cap = ResourceVector(lut=200, dsp=10, bram=4)
    use = ResourceVector(lut=50, dsp=5)
    util = use.utilisation(cap)
    assert util["lut"] == pytest.approx(0.25)
    assert util["dsp"] == pytest.approx(0.5)
    assert "uram" not in util


def test_utilisation_missing_resource_raises():
    cap = ResourceVector(lut=100)
    with pytest.raises(DeviceError, match="device has none"):
        ResourceVector(dsp=1).utilisation(cap)


def test_total():
    vectors = [ResourceVector(lut=1), ResourceVector(lut=2, dsp=1)]
    summed = total(vectors)
    assert summed.lut == 3 and summed.dsp == 1
    assert total([]).lut == 0
