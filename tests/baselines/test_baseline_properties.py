"""Property tests: every baseline CAM agrees with the golden reference.

The LUTRAM and BRAM baselines implement the transposed-table algorithm
(real chunked lookup tables), so agreement with the scan-based
reference is a genuine correctness result for the table construction.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines import BramCam, DspCascadeCam, LutRamCam, RegisterCam
from repro.core import ReferenceCam, binary_entry, ternary_entry
from repro.dsp import mask_for

WIDTH = 12
CAPACITY = 24

values = st.integers(min_value=0, max_value=mask_for(WIDTH))

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def ternary_entries(draw):
    value = draw(values)
    dont_care = draw(values)
    return ternary_entry(value, dont_care, WIDTH)


def check_family(family, stored, probes):
    cam = family(CAPACITY, WIDTH)
    reference = ReferenceCam(CAPACITY)
    cam.update(stored)
    reference.update(stored)
    for probe in probes:
        ours = cam.search(probe)
        gold = reference.search(probe)
        assert ours.hit == gold.hit, (family.__name__, probe)
        assert ours.address == gold.address, (family.__name__, probe)
        assert ours.match_vector == gold.match_vector, (family.__name__, probe)


@SETTINGS
@given(
    stored=st.lists(values, min_size=1, max_size=CAPACITY),
    probes=st.lists(values, min_size=1, max_size=16),
)
def test_binary_agreement_all_families(stored, probes):
    entries = [binary_entry(v, WIDTH) for v in stored]
    for family in (RegisterCam, LutRamCam, BramCam, DspCascadeCam):
        check_family(family, entries, probes + stored[:4])


@SETTINGS
@given(
    stored=st.lists(ternary_entries(), min_size=1, max_size=CAPACITY),
    probes=st.lists(values, min_size=1, max_size=16),
)
def test_ternary_agreement_transposed_tables(stored, probes):
    """The chunked-table TCAMs must honour arbitrary don't-care masks."""
    for family in (LutRamCam, BramCam):
        check_family(family, stored, probes)


@SETTINGS
@given(
    first=st.lists(values, min_size=1, max_size=10),
    second=st.lists(values, min_size=1, max_size=10),
)
def test_incremental_updates_preserve_addresses(first, second):
    """Two update batches behave like one concatenated batch."""
    batched = LutRamCam(CAPACITY, WIDTH)
    batched.update([binary_entry(v, WIDTH) for v in (first + second)[:CAPACITY]])
    incremental = LutRamCam(CAPACITY, WIDTH)
    incremental.update([binary_entry(v, WIDTH) for v in first[:CAPACITY]])
    room = CAPACITY - min(len(first), CAPACITY)
    incremental.update([binary_entry(v, WIDTH) for v in second[:room]])
    for probe in set(first + second):
        assert batched.search(probe).match_vector == \
            incremental.search(probe).match_vector
