"""Unit tests for the four baseline CAM families."""

import pytest

from repro.baselines import (
    BramCam,
    DspCascadeCam,
    LutRamCam,
    RegisterCam,
)
from repro.core import binary_entry, ternary_entry
from repro.errors import CapacityError, ConfigError

ALL_FAMILIES = [RegisterCam, LutRamCam, BramCam, DspCascadeCam]


def entries(values, width=16):
    return [binary_entry(v, width) for v in values]


# ----------------------------------------------------------------------
# shared functional behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_update_search_roundtrip(family):
    cam = family(32, 16)
    cam.update(entries([100, 200, 300]))
    assert cam.search(200).address == 1
    assert not cam.search(400).hit


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_priority_is_insertion_order(family):
    cam = family(32, 16)
    cam.update(entries([7, 7, 7]))
    result = cam.search(7)
    assert result.address == 0
    assert result.match_count == 3


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_overflow_raises(family):
    cam = family(2, 16)
    cam.update(entries([1, 2]))
    with pytest.raises(CapacityError):
        cam.update(entries([3]))


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_reset(family):
    cam = family(16, 16)
    cam.update(entries([5]))
    cam.reset()
    assert not cam.search(5).hit
    cam.update(entries([6]))
    assert cam.search(6).address == 0


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_ternary_entries(family):
    cam = family(16, 16)
    cam.update([ternary_entry(0xA0, 0x0F, 16)])
    assert cam.search(0xA5).hit
    assert not cam.search(0xB5).hit


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_search_many_and_describe(family):
    cam = family(16, 16)
    cam.update(entries([1, 2]))
    results = cam.search_many([1, 2, 3])
    assert [r.hit for r in results] == [True, True, False]
    assert family.__name__ in cam.describe()


# ----------------------------------------------------------------------
# cost models
# ----------------------------------------------------------------------
def test_register_cam_cost_scaling():
    small = RegisterCam(16, 32).cost()
    big = RegisterCam(1024, 32).cost()
    assert big.resources.lut > small.resources.lut
    assert big.resources.ff == 1024 * 32
    assert big.frequency_mhz < small.frequency_mhz
    assert small.update_latency == 1 and small.search_latency == 2


def test_lutram_cam_geometry_matches_frac_tcam():
    """Frac-TCAM's published point: 1024 x 160 bits -> 16384 table LUTs."""
    cam = LutRamCam(1024, 160, chunk_bits=5)
    assert cam.num_chunks == 32
    cost = cam.cost()
    table_luts = 32 * 1024 * 32 // 64  # chunks x entries x rows / 64
    assert table_luts == 16384
    assert cost.resources.lut >= table_luts
    assert cost.update_latency == 32 + 6  # rows + preprocessing
    assert cost.search_latency == 2
    assert cost.frequency_mhz == pytest.approx(357, abs=1)


def test_lutram_update_latency_grows_with_chunk_bits():
    narrow = LutRamCam(64, 16, chunk_bits=4).cost()
    wide = LutRamCam(64, 16, chunk_bits=6).cost()
    assert wide.update_latency > narrow.update_latency


def test_lutram_chunk_bits_validation():
    with pytest.raises(ConfigError):
        LutRamCam(64, 16, chunk_bits=0)
    with pytest.raises(ConfigError):
        LutRamCam(64, 16, chunk_bits=10)


def test_bram_cam_geometry_matches_hp_tcam():
    """HP-TCAM's published point: 512 x 36 bits."""
    cam = BramCam(512, 36)
    cost = cam.cost()
    assert cam.num_chunks == 4
    assert cost.resources.bram == 4 * (512 // 36 + 1)  # ~60 vs paper's 56
    assert cost.search_latency == 5
    assert cost.update_latency == 513  # 512 rows + 1
    assert cost.frequency_mhz == pytest.approx(118, abs=1)


def test_bram_multipumping_cuts_update_latency():
    plain = BramCam(512, 36, pump_factor=1).cost()
    pumped = BramCam(512, 36, pump_factor=4).cost()
    assert pumped.update_latency == 129  # 512/4 + 1, PUMP-CAM's figure
    assert pumped.update_latency < plain.update_latency


def test_bram_pump_factor_validation():
    with pytest.raises(ConfigError):
        BramCam(64, 16, pump_factor=0)


def test_dsp_cascade_matches_preusser_point():
    """Preusser et al.: ~1000 entries in 24 lanes -> 42-cycle search."""
    cam = DspCascadeCam(1000, 24)
    cost = cam.cost()
    assert cam.chain_depth == 42
    assert cost.search_latency == 44  # chain + head/merge
    assert cost.update_latency == 2
    assert cost.resources.dsp >= 1000
    assert cost.frequency_mhz == pytest.approx(350)


def test_dsp_cascade_validation():
    with pytest.raises(ConfigError):
        DspCascadeCam(64, 64)  # wider than a slice
    with pytest.raises(ConfigError):
        DspCascadeCam(64, 16, lanes=0)


def test_dsp_cascade_latency_shrinks_with_lanes():
    few = DspCascadeCam(960, 24, lanes=8).cost()
    many = DspCascadeCam(960, 24, lanes=48).cost()
    assert many.search_latency < few.search_latency
