"""Unit tests for the Table I survey data and Figure 1 scores."""

import pytest

from repro.baselines import (
    AXES,
    LITERATURE,
    characteristics,
    full_survey,
    ours_entry,
)


def test_literature_row_count_and_order():
    assert len(LITERATURE) == 9
    assert LITERATURE[0].name == "Scale-TCAM"
    assert LITERATURE[-1].name == "Preusser et al."


def test_literature_values_transcribed_exactly():
    by_name = {entry.name: entry for entry in LITERATURE}
    frac = by_name["Frac-TCAM"]
    assert (frac.entries, frac.width) == (1024, 160)
    assert frac.frequency_mhz == 357.0
    assert frac.lut == 16_384
    assert frac.update_latency == 38 and frac.search_latency is None
    rest = by_name["REST-CAM"]
    assert (rest.entries, rest.width) == (72, 28)
    assert rest.update_latency == 513 and rest.search_latency == 5
    assert rest.category == "Hybrid"
    io_cam = by_name["IO-CAM"]
    assert io_cam.bram == 2_112 and "Intel" in io_cam.platform


def test_full_survey_appends_our_row():
    rows = full_survey()
    assert len(rows) == 10
    assert rows[-1].name == "Ours"


def test_ours_entry_is_model_derived():
    ours = ours_entry()
    assert ours.update_latency == 6
    assert ours.search_latency == 8
    assert ours.size_bits == 9728 * 48


def test_characteristics_families():
    scores = characteristics()
    assert set(scores) == {"LUT", "BRAM", "Hybrid", "DSP (prior)", "Ours"}
    for family_scores in scores.values():
        assert set(family_scores) == set(AXES)
        for value in family_scores.values():
            assert 0.0 <= value <= 1.0


def test_ours_scalability_is_best():
    scores = characteristics()
    best = max(s["scalability"] for s in scores.values())
    assert scores["Ours"]["scalability"] == pytest.approx(best)


def test_multi_query_unique_to_ours():
    scores = characteristics()
    assert scores["Ours"]["multi_query"] == 1.0
    for family, family_scores in scores.items():
        if family != "Ours":
            assert family_scores["multi_query"] < 0.5


def test_hybrid_integration_is_worst():
    scores = characteristics()
    assert scores["Hybrid"]["integration"] == min(
        s["integration"] for s in scores.values()
    )
