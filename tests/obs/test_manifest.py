"""Benchmark manifest schema: build, validate, write, load."""

import json

import pytest

from repro import obs
from repro.errors import ObsError


def _manifest() -> dict:
    return obs.build_manifest(
        name="table09",
        config={"engine": "batch", "max_edges": 2000},
        timings={"test_speedup": 1.25},
        metrics={"metrics": []},
    )


def test_build_manifest_is_schema_valid():
    manifest = _manifest()
    assert manifest["schema"] == obs.MANIFEST_SCHEMA
    assert manifest["name"] == "table09"
    assert manifest["meta"]["version"]
    assert "git_sha" in manifest["meta"]
    assert manifest["timings"]["test_speedup"] == 1.25
    obs.validate_manifest(manifest)


def test_build_manifest_requires_name():
    with pytest.raises(ObsError):
        obs.build_manifest(name="")


def test_validate_rejects_missing_keys_and_bad_types():
    manifest = _manifest()
    for key in ("schema", "name", "meta", "created_unix", "config",
                "timings", "metrics"):
        broken = dict(manifest)
        del broken[key]
        with pytest.raises(ObsError):
            obs.validate_manifest(broken)
    with pytest.raises(ObsError):
        obs.validate_manifest(dict(_manifest(), timings={"t": "fast"}))
    with pytest.raises(ObsError):
        obs.validate_manifest(dict(_manifest(), schema="something/else"))
    with pytest.raises(ObsError):
        obs.validate_manifest([1, 2, 3])


def test_validate_requires_provenance_in_meta():
    manifest = _manifest()
    manifest["meta"] = {"version": "1.0.0"}
    with pytest.raises(ObsError):
        obs.validate_manifest(manifest)


def test_manifest_filename_sanitises():
    assert obs.manifest_filename("table09") == "BENCH_table09.json"
    assert obs.manifest_filename("a b/c") == "BENCH_a_b_c.json"


def test_write_and_load_round_trip(tmp_path):
    path = obs.write_manifest(_manifest(), str(tmp_path))
    assert path.endswith("BENCH_table09.json")
    loaded = obs.load_manifest(path)
    assert loaded["config"]["max_edges"] == 2000


def test_load_rejects_invalid_json_and_missing_files(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{not json")
    with pytest.raises(ObsError):
        obs.load_manifest(str(bad))
    with pytest.raises(ObsError):
        obs.load_manifest(str(tmp_path / "missing.json"))
    valid_json = tmp_path / "BENCH_other.json"
    valid_json.write_text(json.dumps({"schema": "x"}))
    with pytest.raises(ObsError):
        obs.load_manifest(str(valid_json))
