"""End-to-end: the instrumented library reports through the registry."""

import pytest

from repro import obs
from repro.core import open_session, unit_for_entries
from repro.core.stats import collect_stats, publish_stats


@pytest.fixture(params=["cycle", "batch"])
def session(request):
    return open_session(
        unit_for_entries(128, block_size=32, data_width=32,
                         default_groups=2),
        engine=request.param,
    )


def _drive(session) -> None:
    words = list(range(100, 148))
    session.update(words)
    session.search(words[:16] + [999_999])
    session.delete(words[0])


def test_session_counters_and_histograms(session):
    obs.enable(tracing=False)
    _drive(session)
    engine = session.engine_name
    registry = obs.metrics()
    assert registry.counter("cam_updates_total").value(engine=engine) == 1
    assert registry.counter("cam_update_words_total").value(engine=engine) == 48
    assert registry.counter("cam_searches_total").value(engine=engine) == 1
    assert registry.counter("cam_search_keys_total").value(engine=engine) == 17
    assert registry.counter("cam_search_hits_total").value(engine=engine) == 16
    assert registry.counter("cam_deletes_total").value(engine=engine) == 1
    assert registry.histogram("cam_search_latency_cycles").count(
        engine=engine) == 1
    assert registry.histogram("cam_update_latency_cycles").count(
        engine=engine) == 1
    assert registry.histogram("cam_op_wall_seconds").count(
        engine=engine, op="search") == 1
    assert registry.gauge("cam_occupancy_entries").value(engine=engine) == 48


def test_session_and_unit_spans_nest(session):
    obs.enable(tracing=True)
    _drive(session)
    spans = [e for e in obs.tracer().events if e["ph"] == "X"]
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    assert "session.update" in by_name
    assert "session.search" in by_name
    assert "unit.update" in by_name and "unit.search" in by_name
    outer = by_name["session.search"][0]
    inner = by_name["unit.search"][0]
    assert inner["args"]["depth"] > outer["args"]["depth"]
    assert outer["ts"] <= inner["ts"]
    assert (inner["ts"] + inner["dur"]
            <= outer["ts"] + outer["dur"] + 1e-6)
    assert outer["args"]["engine"] == session.engine_name


def test_unit_stats_publish_as_gauges(session):
    _drive(session)
    unit = getattr(session, "unit", None)
    if unit is None:
        pytest.skip("batch engine has no cycle-accurate unit to snapshot")
    registry = obs.metrics()
    stats = collect_stats(unit)
    publish_stats(stats)  # works even while telemetry is disabled
    assert registry.gauge("cam_unit_cells_total").value() == 128
    assert registry.gauge("cam_unit_consumed_cells").value() == \
        stats.consumed_cells
    assert registry.gauge("cam_unit_holes").value() == stats.holes
    assert registry.gauge("cam_unit_utilisation").value() == \
        pytest.approx(stats.utilisation)
    assert registry.gauge("cam_unit_balanced").value() == 1
    group_fill = registry.gauge("cam_group_fill_cells")
    assert sum(value for _key, value in group_fill.samples()) == \
        stats.consumed_cells


def test_memory_models_report():
    from repro.mem import U250_SINGLE_CHANNEL

    obs.enable(tracing=False)
    U250_SINGLE_CHANNEL.stream_cycles(4096, frequency_mhz=300.0)
    registry = obs.metrics()
    assert registry.counter("mem_ddr_transactions_total").value(
        kind="stream") == 1
    assert registry.counter("mem_ddr_bytes_total").total() == 4096


def test_tc_intersection_kernel_reports():
    from repro.apps.tc.intersect import CamIntersector

    obs.enable(tracing=True)
    cam = CamIntersector()
    common, _cycles = cam.intersect([1, 2, 3, 4], [2, 4, 9])
    assert common == 2
    registry = obs.metrics()
    assert registry.counter("tc_intersections_total").total() == 1
    assert registry.counter("tc_intersection_matches_total").total() == 2
    names = {e["name"] for e in obs.tracer().events if e["ph"] == "X"}
    assert "tc.intersect" in names
    assert "session.search" in names


def test_audit_engine_reports_audit_counters():
    obs.enable(tracing=False)
    session = open_session(
        unit_for_entries(64, block_size=16, data_width=16),
        engine="audit", audit_sample=1.0, audit_seed=0,
    )
    session.update([1, 2, 3])
    session.search([2, 9])
    audited = obs.metrics().counter("cam_audit_ops_total")
    assert audited.value(mode="audited") >= 1
    assert obs.metrics().counter("cam_audit_divergences_total").total() == 0
