"""Telemetry tests always start from (and leave behind) a clean,
disabled global state."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()
