"""Global telemetry state: lifecycle, guards, disabled-mode cost."""

import time

import pytest

from repro import obs
from repro.core import open_session, unit_for_entries
from repro.errors import ObsError


def test_disabled_by_default():
    assert not obs.enabled()
    assert not obs.tracing_enabled()


def test_enable_disable_reset_lifecycle():
    obs.enable()
    assert obs.enabled() and obs.tracing_enabled()
    obs.inc("ops_total")
    obs.disable()
    assert not obs.enabled()
    # Collected data survives disable...
    assert obs.metrics().counter("ops_total").total() == 1
    # ...and re-enabling appends to it.
    obs.enable(tracing=False)
    obs.inc("ops_total")
    assert obs.metrics().counter("ops_total").total() == 2
    assert not obs.tracing_enabled()
    # reset drops everything.
    obs.reset()
    assert not obs.enabled()
    assert len(obs.metrics()) == 0
    assert obs.tracer().events == []


def test_helpers_are_noops_while_disabled():
    obs.inc("ops_total")
    obs.set_gauge("occupancy", 5)
    obs.observe("latency", 3)
    obs.instant("mark")
    assert obs.span("work") is obs.NULL_SPAN
    assert len(obs.metrics()) == 0
    assert obs.tracer().events == []


def test_helpers_write_through_while_enabled():
    obs.enable()
    obs.inc("ops_total", 2, help="ops", engine="batch")
    obs.set_gauge("occupancy", 5)
    obs.observe("latency", 3, buckets=(1, 10))
    with obs.span("work", keys=1):
        obs.instant("mark")
    assert obs.metrics().counter("ops_total").value(engine="batch") == 2
    assert obs.metrics().gauge("occupancy").value() == 5
    assert obs.metrics().histogram("latency").count() == 1
    names = [e["name"] for e in obs.tracer().events]
    assert names == ["mark", "work"]


def test_name_label_does_not_collide_with_positional_name():
    obs.enable()
    with obs.span("tc.dataset", name="roadNet-CA"):
        pass
    obs.inc("rows_total", 1, name="roadNet-CA")
    assert obs.tracer().events[0]["args"]["name"] == "roadNet-CA"
    assert obs.metrics().counter("rows_total").value(name="roadNet-CA") == 1


def test_enable_rejects_bad_sample():
    with pytest.raises(ObsError):
        obs.enable(tracing=True, sample=2.0)


def _workload(session) -> None:
    words = list(range(200, 328))
    session.update(words)
    session.search(words[:64] + [10**6])
    session.delete(words[0])


def test_disabled_mode_records_nothing_through_real_sessions():
    session = open_session(
        unit_for_entries(256, block_size=64, data_width=32),
        engine="batch",
    )
    _workload(session)
    assert len(obs.metrics()) == 0
    assert obs.tracer().span_count() == 0


@pytest.mark.slow
def test_disabled_mode_overhead_under_five_percent():
    """Instrumentation with telemetry off costs <5% vs stubbed-out obs.

    The stub replaces the module-level helpers with bare no-ops -- the
    closest available stand-in for "the code had never been
    instrumented". Interleaved best-of-N keeps the comparison robust to
    scheduler noise.
    """
    config = unit_for_entries(512, block_size=128, data_width=32)

    def run_real() -> float:
        session = open_session(config, engine="batch")
        start = time.perf_counter()
        for _ in range(8):
            _workload(session)
            session.reset()
        return time.perf_counter() - start

    null_span = obs.NULL_SPAN

    def run_stubbed(monkey) -> float:
        session = open_session(config, engine="batch")
        start = time.perf_counter()
        for _ in range(8):
            _workload(session)
            session.reset()
        return time.perf_counter() - start

    import repro.obs as obs_module

    real_span, real_enabled = obs_module.span, obs_module.enabled
    stub_span = lambda *a, **k: null_span  # noqa: E731
    stub_enabled = lambda: False  # noqa: E731

    best_real = float("inf")
    best_stub = float("inf")
    # Warm-up round then interleaved measurement.
    run_real()
    try:
        for _ in range(7):
            best_real = min(best_real, run_real())
            obs_module.span = stub_span
            obs_module.enabled = stub_enabled
            try:
                best_stub = min(best_stub, run_stubbed(None))
            finally:
                obs_module.span = real_span
                obs_module.enabled = real_enabled
    finally:
        obs_module.span = real_span
        obs_module.enabled = real_enabled

    # 5% relative plus a small absolute epsilon for timer granularity.
    assert best_real <= best_stub * 1.05 + 0.002, (
        f"disabled telemetry overhead too high: real={best_real:.6f}s "
        f"stub={best_stub:.6f}s"
    )
