"""Metric primitives: counters, gauges, histogram bucket semantics."""

import pytest

from repro.errors import ObsError
# ``repro.obs.metrics`` the submodule is shadowed by the
# ``obs.metrics()`` accessor on the package, so import names directly.
from repro.obs.metrics import (
    CYCLE_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# counters / gauges
# ----------------------------------------------------------------------
def test_counter_accumulates_per_label_set():
    counter = Counter("ops_total")
    counter.inc()
    counter.inc(4, engine="batch")
    counter.inc(1, engine="batch")
    assert counter.value() == 1
    assert counter.value(engine="batch") == 5
    assert counter.total() == 6


def test_counter_rejects_negative_increment():
    counter = Counter("ops_total")
    with pytest.raises(ObsError):
        counter.inc(-1)


def test_gauge_set_and_add():
    gauge = Gauge("occupancy")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value() == 7
    gauge.set(2, group=1)
    assert gauge.value(group=1) == 2


def test_metric_name_validation():
    with pytest.raises(ObsError):
        Counter("bad name")
    with pytest.raises(ObsError):
        Counter("")


# ----------------------------------------------------------------------
# histogram bucket edges
# ----------------------------------------------------------------------
def test_histogram_edges_are_le_inclusive():
    hist = Histogram("latency", buckets=(1, 4, 16))
    for value in (1, 4, 4, 5, 16, 17, 1000):
        hist.observe(value)
    # value<=edge lands in that bucket: 1 -> [<=1]; 4,4 -> [<=4];
    # 5,16 -> [<=16]; 17,1000 -> +Inf.
    assert hist.bucket_counts() == [1, 2, 2, 2]
    assert hist.cumulative_counts() == [1, 3, 5, 7]
    assert hist.count() == 7
    assert hist.sum() == 1 + 4 + 4 + 5 + 16 + 17 + 1000


def test_histogram_per_label_state():
    hist = Histogram("latency", buckets=(10,))
    hist.observe(3, op="search")
    hist.observe(30, op="update")
    assert hist.bucket_counts(op="search") == [1, 0]
    assert hist.bucket_counts(op="update") == [0, 1]
    assert hist.bucket_counts(op="missing") == [0, 0]


def test_histogram_rejects_bad_edges():
    with pytest.raises(ObsError):
        Histogram("h", buckets=())
    with pytest.raises(ObsError):
        Histogram("h", buckets=(4, 2))
    with pytest.raises(ObsError):
        Histogram("h", buckets=(1, 1, 2))


def test_default_bucket_tables_are_strictly_increasing():
    for table in (CYCLE_BUCKETS, SECONDS_BUCKETS):
        assert list(table) == sorted(table)
        assert len(set(table)) == len(table)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_family():
    registry = MetricsRegistry()
    first = registry.counter("ops_total", help="operations")
    second = registry.counter("ops_total")
    assert first is second
    assert second.help == "operations"
    assert registry.names() == ["ops_total"]


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("ops_total")
    with pytest.raises(ObsError):
        registry.gauge("ops_total")
    with pytest.raises(ObsError):
        registry.histogram("ops_total")


def test_registry_rejects_histogram_bucket_conflicts():
    registry = MetricsRegistry()
    registry.histogram("latency", buckets=(1, 2))
    registry.histogram("latency", buckets=(1, 2))  # identical is fine
    registry.histogram("latency")  # None -> keep existing
    with pytest.raises(ObsError):
        registry.histogram("latency", buckets=(1, 2, 3))


# ----------------------------------------------------------------------
# prometheus exposition escaping
# ----------------------------------------------------------------------
def test_prometheus_escapes_hostile_label_values():
    """Backslashes, quotes and newlines in label values must be
    escaped per the exposition format -- a hostile label (say, a
    client-supplied path or error string) must not be able to break
    out of its quoted value or inject lines."""
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", help="by source")
    hostile = 'C:\\temp\\"evil"\ninjected_metric 1'
    counter.inc(3, source=hostile)
    text = registry.to_prometheus()
    assert ('requests_total{source='
            '"C:\\\\temp\\\\\\"evil\\"\\ninjected_metric 1"} 3') in text
    # no raw newline escaped the label: every line is well formed
    for line in text.splitlines():
        assert line.startswith(("#", "requests_total")), line
    assert "\ninjected_metric" not in text


def test_prometheus_escapes_help_text():
    registry = MetricsRegistry()
    registry.counter("ops_total", help="first\nsecond \\ back")
    text = registry.to_prometheus()
    assert "# HELP ops_total first\\nsecond \\\\ back" in text


def test_prometheus_histogram_labels_escaped_too():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency_seconds", buckets=(1.0,))
    histogram.observe(0.5, stage='a"b')
    text = registry.to_prometheus()
    assert 'latency_seconds_bucket{stage="a\\"b",le="1"}' in text
    assert 'latency_seconds_count{stage="a\\"b"} 1' in text
