"""Registry export formats against committed golden files.

The meta header (version / git SHA / python) varies per checkout, so
the comparison normalises it; everything else must match byte-for-byte.
"""

import json
import os
import re

from repro.obs import MetricsRegistry

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    searches = registry.counter("cam_searches_total",
                                help="CAM search transactions")
    searches.inc(3, engine="cycle")
    searches.inc(40, engine="batch")
    registry.gauge("cam_occupancy_entries",
                   help="stored words per logical group").set(96, engine="cycle")
    latency = registry.histogram("cam_search_latency_cycles",
                                 help="cycles per search transaction",
                                 buckets=(4, 16, 64))
    for value in (3, 7, 9, 20, 500):
        latency.observe(value, engine="cycle")
    registry.gauge("cam_unit_utilisation",
                   help="consumed fraction of the unit's cells").set(0.75)
    return registry


def _normalise_prometheus(text: str) -> str:
    return re.sub(
        r"^# repro .*$",
        "# repro VERSION git=SHA python=PY",
        text,
        count=1,
        flags=re.M,
    )


def _normalise_json(text: str) -> dict:
    data = json.loads(text)
    data["meta"] = {"normalised": True}
    return data


def _golden(name: str, rendered: str) -> str:
    path = os.path.join(GOLDEN_DIR, name)
    if not os.path.exists(path):  # pragma: no cover - regeneration path
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def test_prometheus_export_matches_golden():
    rendered = _normalise_prometheus(_build_registry().to_prometheus())
    assert rendered == _golden("export.prom", rendered)


def test_json_export_matches_golden():
    rendered = _normalise_json(_build_registry().to_json())
    golden = _normalise_json(_golden("export.json",
                                     _build_registry().to_json()))
    assert rendered == golden


def test_prometheus_has_cumulative_histogram_samples():
    text = _build_registry().to_prometheus()
    assert 'cam_search_latency_cycles_bucket{engine="cycle",le="4"} 1' in text
    assert 'cam_search_latency_cycles_bucket{engine="cycle",le="16"} 3' in text
    assert 'cam_search_latency_cycles_bucket{engine="cycle",le="64"} 4' in text
    assert 'cam_search_latency_cycles_bucket{engine="cycle",le="+Inf"} 5' in text
    assert 'cam_search_latency_cycles_sum{engine="cycle"} 539' in text
    assert 'cam_search_latency_cycles_count{engine="cycle"} 5' in text


def test_prometheus_renders_integral_floats_as_ints():
    text = _build_registry().to_prometheus()
    assert 'cam_searches_total{engine="batch"} 40' in text
    assert "cam_unit_utilisation 0.75" in text
