"""Span tracing: nesting, sampling, Chrome export, sim unification."""

import json

import pytest

from repro.errors import ObsError
from repro.obs.tracing import NULL_SPAN, TID_SIM, TID_SPANS, Tracer
from repro.sim import Component, Simulator, Trace


def _contains(outer: dict, inner: dict) -> bool:
    return (outer["ts"] <= inner["ts"]
            and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6)


def test_spans_nest_with_the_with_stack():
    tracer = Tracer(enabled=True)
    with tracer.span("session.search", keys=3):
        with tracer.span("unit.search"):
            pass
        with tracer.span("unit.drain"):
            pass
    events = tracer.events
    assert [e["name"] for e in events] == [
        "unit.search", "unit.drain", "session.search",
    ]
    outer = events[-1]
    assert outer["args"]["depth"] == 0
    assert outer["args"]["keys"] == 3
    assert outer["cat"] == "session"
    for inner in events[:2]:
        assert inner["args"]["depth"] == 1
        assert _contains(outer, inner)


def test_span_set_attaches_late_arguments():
    tracer = Tracer(enabled=True)
    with tracer.span("work") as span:
        span.set(rows=42)
    assert tracer.events[0]["args"]["rows"] == 42


def test_span_records_exception_class():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.span("work"):
            raise ValueError("boom")
    assert tracer.events[0]["args"]["error"] == "ValueError"


def test_disabled_tracer_returns_shared_null_span():
    tracer = Tracer(enabled=False)
    assert tracer.span("anything", x=1) is NULL_SPAN
    with tracer.span("anything"):
        pass
    assert tracer.events == []
    assert tracer.span_count() == 0


def test_sampling_suppresses_whole_subtrees():
    tracer = Tracer(enabled=True, sample=0.0, seed=1)
    with tracer.span("root"):
        with tracer.span("child"):
            tracer.instant("mark")
    assert tracer.events == []

    keep_all = Tracer(enabled=True, sample=1.0)
    with keep_all.span("root"):
        with keep_all.span("child"):
            pass
    assert keep_all.span_count() == 2


def test_sampling_keeps_a_seeded_fraction_of_roots():
    tracer = Tracer(enabled=True, sample=0.5, seed=3)
    for _ in range(200):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
    kept = tracer.span_count() // 2
    assert 60 <= kept <= 140
    # Every kept root kept exactly its child: tree consistency.
    names = [e["name"] for e in tracer.events]
    assert names.count("root") == names.count("child")


def test_invalid_sample_rejected():
    with pytest.raises(ObsError):
        Tracer(enabled=True, sample=1.5)


def test_chrome_export_round_trip(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("session.update", words=2):
        tracer.instant("mark", note="hello")
    path = tmp_path / "trace.json"
    spans = tracer.write_chrome(str(path))
    assert spans == 1

    loaded = json.loads(path.read_text())
    events = loaded["traceEvents"]
    assert {e["ph"] for e in events} <= {"M", "X", "i"}
    # Metadata names the tracks so Perfetto labels them.
    metadata = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in metadata} >= {
        "spans", "sim signals (cycles)", "repro",
    }
    complete = [e for e in events if e["ph"] == "X"]
    assert complete[0]["name"] == "session.update"
    assert complete[0]["dur"] >= 0
    assert loaded["otherData"]["version"]


class _Blinker(Component):
    def reset_state(self):
        self.n = 0

    def compute(self):
        self.emit(led=self.n % 2)
        self.schedule(n=self.n + 1)


def test_sim_trace_unifies_onto_the_sim_track():
    trace = Trace()
    Simulator(_Blinker("blink"), trace=trace).step(4)
    tracer = Tracer(enabled=False)  # explicit export works while disabled
    added = tracer.add_sim_trace(trace, frequency_mhz=100.0)
    assert added == 4
    sim_events = [e for e in tracer.events if e["tid"] == TID_SIM]
    assert len(sim_events) == 4
    assert all(e["ph"] == "i" for e in sim_events)
    assert sim_events[1]["ts"] == pytest.approx(1 / 100.0)
    assert sim_events[0]["name"] == "blink.led"
    assert not any(e["tid"] == TID_SPANS for e in tracer.events)


def test_sim_trace_truncation_becomes_a_marker_event():
    trace = Trace(limit=2)
    Simulator(_Blinker("blink"), trace=trace).step(10)
    assert trace.truncated
    tracer = Tracer(enabled=False)
    tracer.add_sim_trace(trace)
    markers = [e for e in tracer.events if e["name"] == "sim.trace_truncated"]
    assert len(markers) == 1
    assert markers[0]["args"]["dropped_events"] == trace.dropped


def test_add_sim_trace_rejects_bad_frequency():
    trace = Trace()
    Simulator(_Blinker("blink"), trace=trace).step(2)
    with pytest.raises(ObsError):
        Tracer().add_sim_trace(trace, frequency_mhz=0)
