"""CLI surface of the telemetry subsystem."""

import json

import pytest

from repro import obs
from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_version_reports_package_and_git(capsys):
    with pytest.raises(SystemExit) as exit_info:
        main(["--version"])
    assert exit_info.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("repro ")
    assert obs.package_version() in out


def test_metrics_command_emits_both_formats(capsys):
    code, out, _ = run(capsys, "metrics")
    assert code == 0
    # Prometheus side: counters with engine labels and a histogram.
    assert "# TYPE cam_searches_total counter" in out
    assert 'cam_searches_total{engine="cycle"}' in out
    assert "cam_search_latency_cycles_bucket" in out
    assert "cam_unit_utilisation" in out
    # JSON side parses and carries the same families.
    json_start = out.index('{\n  "meta"')
    snapshot = json.loads(out[json_start:])
    names = {metric["name"] for metric in snapshot["metrics"]}
    assert "cam_searches_total" in names
    assert "cam_update_latency_cycles" in names


def test_metrics_command_json_only(capsys):
    code, out, _ = run(capsys, "metrics", "--format", "json",
                       "--engine", "batch")
    assert code == 0
    snapshot = json.loads(out)
    families = {m["name"]: m for m in snapshot["metrics"]}
    assert families["cam_searches_total"]["samples"][0]["labels"] == {
        "engine": "batch"
    }


def test_trace_command_writes_loadable_chrome_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    code, out, _ = run(capsys, "trace", "--out", str(out_path))
    assert code == 0
    trace = json.loads(out_path.read_text())
    events = trace["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    assert {"session.update", "session.search"} <= {e["name"] for e in spans}
    # The sim waveform is unified onto its own track.
    sim_events = [e for e in events if e.get("cat") == "sim"]
    assert sim_events


def test_demo_trace_and_manifest(tmp_path, capsys):
    trace_path = tmp_path / "demo_trace.json"
    manifest_path = tmp_path / "demo_manifest.json"
    code, out, _ = run(
        capsys, "demo", "--engine", "batch",
        "--trace-out", str(trace_path),
        "--manifest-out", str(manifest_path),
    )
    assert code == 0
    assert "wrote manifest" in out
    manifest = obs.load_manifest(str(manifest_path))
    assert manifest["name"] == "cli_demo"
    assert manifest["config"]["engine"] == "batch"
    assert manifest["timings"]["wall_s"] > 0
    names = {m["name"] for m in manifest["metrics"]["metrics"]}
    assert "cam_updates_total" in names
    trace = json.loads(trace_path.read_text())
    assert any(e.get("ph") == "X" for e in trace["traceEvents"])


def test_validate_manifest_command(tmp_path, capsys):
    path = obs.write_manifest(
        obs.build_manifest(name="smoke", timings={"t": 0.1}),
        str(tmp_path),
    )
    code, out, _ = run(capsys, "validate-manifest", path)
    assert code == 0
    assert "valid" in out

    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{}")
    code, _out, err = run(capsys, "validate-manifest", str(bad))
    assert code == 1
    assert "error" in err


@pytest.mark.slow
def test_tc_trace_out_has_nested_pipeline_spans(tmp_path, capsys):
    trace_path = tmp_path / "tc_trace.json"
    code, out, _ = run(
        capsys, "tc", "--dataset", "facebook_combined",
        "--max-edges", "1000", "--trace-out", str(trace_path),
    )
    assert code == 0
    assert "functional cross-check" in out
    trace = json.loads(trace_path.read_text())
    spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    names = {e["name"] for e in spans}
    assert {"tc.dataset", "tc.cost_model", "tc.verify", "tc.intersect"} <= names
    assert any(name.startswith("session.") for name in names)
    assert any(name.startswith("unit.") for name in names)

    def contains(outer, inner):
        return (outer["ts"] <= inner["ts"] and inner["ts"] + inner["dur"]
                <= outer["ts"] + outer["dur"] + 1e-6)

    verify = next(e for e in spans if e["name"] == "tc.verify")
    intersects = [e for e in spans if e["name"] == "tc.intersect"]
    sessions = [e for e in spans if e["name"].startswith("session.")]
    assert any(contains(verify, e) for e in intersects)
    assert any(contains(i, s) for i in intersects for s in sessions)
