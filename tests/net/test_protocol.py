"""Wire protocol: framing, CRC, codecs, error mapping.

Property tests (hypothesis) cover round-trips and arbitrary stream
chunking; the rest are adversarial decode paths -- the bytes a hostile
or broken peer could send.
"""

import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.session import UpdateStats
from repro.core.types import Encoding, SearchResult
from repro.errors import (
    ConfigError,
    FrameTooLargeError,
    ProtocolError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadError,
    ShardFailedError,
)
from repro.net import protocol
from repro.net.protocol import (
    FRAME_OVERHEAD,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    TOKEN_SIZE,
    ErrorCode,
    FrameDecoder,
    Opcode,
    decode_frame,
    encode_frame,
)

key_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    min_size=1, max_size=20,
)


# ----------------------------------------------------------------------
# frame round-trips
# ----------------------------------------------------------------------
@given(
    opcode=st.sampled_from(list(Opcode)),
    request_id=st.integers(min_value=0, max_value=(1 << 32) - 1),
    payload=st.binary(max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_frame_round_trip(opcode, request_id, payload):
    frame = decode_frame(encode_frame(opcode, request_id, payload))
    assert frame.opcode is opcode
    assert frame.request_id == request_id
    assert frame.payload == payload


@given(
    frames=st.lists(
        st.tuples(st.sampled_from([Opcode.LOOKUP, Opcode.PING,
                                   Opcode.RESULT]),
                  st.binary(max_size=40)),
        min_size=1, max_size=6,
    ),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_decoder_survives_arbitrary_chunking(frames, data):
    """However the byte stream is fragmented, the same frames emerge
    in order."""
    stream = b"".join(encode_frame(op, i, payload)
                      for i, (op, payload) in enumerate(frames))
    decoder = FrameDecoder()
    out = []
    position = 0
    while position < len(stream):
        step = data.draw(st.integers(min_value=1,
                                     max_value=len(stream) - position))
        out.extend(decoder.feed(stream[position:position + step]))
        position += step
    assert [(f.opcode, f.request_id, f.payload) for f in out] \
        == [(op, i, payload) for i, (op, payload) in enumerate(frames)]
    assert decoder.buffered == 0


def test_incomplete_frame_stays_buffered():
    blob = encode_frame(Opcode.PING, 7, b"x" * 32)
    decoder = FrameDecoder()
    assert decoder.feed(blob[:-1]) == []
    assert decoder.buffered == len(blob) - 1
    frames = decoder.feed(blob[-1:])
    assert len(frames) == 1 and frames[0].payload == b"x" * 32


# ----------------------------------------------------------------------
# adversarial frames
# ----------------------------------------------------------------------
def test_bad_magic_rejected():
    blob = b"XCAM" + encode_frame(Opcode.PING, 1)[4:]
    with pytest.raises(ProtocolError, match="magic"):
        FrameDecoder().feed(blob)


def test_future_version_rejected():
    blob = bytearray(encode_frame(Opcode.PING, 1))
    blob[4] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError, match="version"):
        FrameDecoder().feed(bytes(blob))


def test_crc_corruption_rejected():
    blob = bytearray(encode_frame(Opcode.PING, 1, b"payload"))
    blob[-6] ^= 0x40  # flip one payload bit; CRC no longer matches
    with pytest.raises(ProtocolError, match="CRC"):
        FrameDecoder().feed(bytes(blob))


def test_unknown_opcode_rejected():
    head = struct.Struct("<4sBBII").pack(PROTOCOL_MAGIC, PROTOCOL_VERSION,
                                         0x70, 1, 0)
    blob = head + struct.pack("<I", zlib.crc32(head) & 0xFFFFFFFF)
    with pytest.raises(ProtocolError, match="opcode"):
        FrameDecoder().feed(blob)


def test_oversize_frame_rejected_before_payload_arrives():
    """The declared length alone must trip the cap -- a peer cannot
    make us buffer a huge payload first."""
    decoder = FrameDecoder(max_frame_size=64)
    head = struct.Struct("<4sBBII").pack(PROTOCOL_MAGIC, PROTOCOL_VERSION,
                                         int(Opcode.PING), 1, 1 << 20)
    with pytest.raises(FrameTooLargeError):
        decoder.feed(head)


def test_decode_frame_rejects_trailing_bytes():
    blob = encode_frame(Opcode.PING, 1) + encode_frame(Opcode.PING, 2)
    with pytest.raises(ProtocolError):
        decode_frame(blob)
    with pytest.raises(ProtocolError, match="incomplete"):
        decode_frame(encode_frame(Opcode.PING, 1)[:-2])


def test_frame_overhead_constant_matches_layout():
    assert len(encode_frame(Opcode.PING, 0, b"")) == FRAME_OVERHEAD


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
@given(keys=key_lists)
@settings(max_examples=40, deadline=None)
def test_lookup_batch_round_trip(keys):
    assert protocol.decode_lookup(protocol.encode_lookup(keys)) == keys


@given(keys=key_lists, token=st.binary(min_size=TOKEN_SIZE,
                                       max_size=TOKEN_SIZE))
@settings(max_examples=40, deadline=None)
def test_mutation_round_trip(keys, token):
    got_token, got_keys = protocol.decode_mutation(
        protocol.encode_mutation(token, keys)
    )
    assert got_token == token and got_keys == keys


def test_empty_batches_rejected():
    with pytest.raises(ConfigError):
        protocol.encode_lookup([])
    with pytest.raises(ConfigError):
        protocol.encode_mutation(b"\0" * TOKEN_SIZE, [])
    with pytest.raises(ConfigError):
        protocol.encode_mutation(b"short", [1])


@pytest.mark.parametrize("mutate", [
    lambda b: b[:3],                      # shorter than the count
    lambda b: b[:-4],                     # declared keys missing
    lambda b: b + b"\0",                  # trailing garbage
])
def test_truncated_key_batches_rejected(mutate):
    blob = mutate(bytearray(protocol.encode_lookup([1, 2, 3])))
    with pytest.raises(ProtocolError):
        protocol.decode_lookup(bytes(blob))


@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from(["ok", "timeout", "shard_failed", "error"]),
            st.integers(min_value=0, max_value=(1 << 64) - 1),
            st.integers(min_value=0, max_value=(1 << 130) - 1),
        ),
        max_size=8,
    ),
)
@settings(max_examples=40, deadline=None)
def test_results_round_trip_bit_identical(entries):
    results = [
        (status, SearchResult.from_vector(key, vector, Encoding.BINARY))
        for status, key, vector in entries
    ]
    decoded = protocol.decode_results(protocol.encode_results(results))
    assert len(decoded) == len(results)
    for (status, want), (got_status, got) in zip(results, decoded):
        assert got_status == status
        assert (got.hit, got.address, got.match_vector, got.key) \
            == (want.hit, want.address, want.match_vector, want.key)


def test_update_ack_round_trip():
    stats = UpdateStats(words=7, beats=3, cycles=12345)
    status, got = protocol.decode_update_ack(
        protocol.encode_update_ack("ok", stats)
    )
    assert status == "ok"
    assert (got.words, got.beats, got.cycles) == (7, 3, 12345)
    with pytest.raises(ProtocolError):
        protocol.decode_update_ack(b"\0\0")


def test_stats_round_trip_and_rejects_non_objects():
    doc = {"server": {"requests": 3}, "cam": {"capacity": 64}}
    assert protocol.decode_stats(protocol.encode_stats(doc)) == doc
    with pytest.raises(ProtocolError):
        protocol.decode_stats(b"[1, 2]")
    with pytest.raises(ProtocolError):
        protocol.decode_stats(b"\xff\xfenot json")


# ----------------------------------------------------------------------
# error frame mapping
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exc, code", [
    (ServiceDrainingError("drain"), ErrorCode.RETRY_LATER),
    (ServiceOverloadError("full"), ErrorCode.OVERLOADED),
    (ShardFailedError(2, "dead"), ErrorCode.SHARD_FAILED),
    (ProtocolError("junk"), ErrorCode.BAD_FRAME),
    (FrameTooLargeError("big"), ErrorCode.FRAME_TOO_LARGE),
    (RuntimeError("surprise"), ErrorCode.INTERNAL),
])
def test_error_code_mapping(exc, code):
    assert protocol.error_code_for(exc) is code


def test_error_frame_round_trip_rebuilds_typed_exception():
    payload = protocol.encode_error(ErrorCode.RETRY_LATER, "draining")
    code, message = protocol.decode_error(payload)
    exc = protocol.exception_for(code, message)
    assert isinstance(exc, ServiceDrainingError)
    assert "draining" in str(exc)
    # Unknown codes (a future server) degrade to the generic error.
    assert isinstance(protocol.exception_for(9999, "?"), ServiceError)
    with pytest.raises(ProtocolError):
        protocol.decode_error(b"\x01")
