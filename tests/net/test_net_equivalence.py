"""Network path proven result-identical to the in-process service.

The same randomized insert/lookup/delete tape runs through three
stacks:

1. ``CamClient -> CamServer -> CamService -> ShardedCam`` (network),
2. ``CamService -> ShardedCam`` in-process (same construction),
3. the golden :class:`ReferenceCam`.

Every lookup/delete answer must be **bit-identical** across all three
-- hit flag, matched address and the raw per-cell match vector -- and
insert acks must agree on word counts. A second suite injects a
connection kill mid-tape and proves the retry machinery loses and
duplicates nothing: responses stay bit-identical and the final CAM
content hashes match.

(No pytest-asyncio: scenarios run via ``asyncio.run`` inside sync
tests, same idiom as the service suites.)
"""

import asyncio
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ReferenceCam, binary_entry, unit_for_entries
from repro.net import CamClient, CamServer
from repro.service import CamService, ShardedCam

WIDTH = 12
#: Tiny key space so duplicates (priority ties) are common.
keys = st.integers(min_value=0, max_value=63)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.lists(keys, min_size=1, max_size=5)),
        st.tuples(st.just("lookup"), keys),
        st.tuples(st.just("delete"), keys),
    ),
    min_size=1,
    max_size=20,
)

_DEEP = os.environ.get("HYPOTHESIS_PROFILE", "") == "deep"
EXAMPLES = 25 if _DEEP else 8

common_settings = settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_cam():
    config = unit_for_entries(32, block_size=16, data_width=WIDTH,
                              bus_width=64)
    return ShardedCam(config, shards=2, engine="batch")


def bound_workload(workload):
    """Drop inserts that could overflow a single hash-skewed shard."""
    cam = make_cam()
    budget = cam.sessions[0].capacity
    live = 0
    bounded = []
    for op, arg in workload:
        if op == "insert":
            if live + len(arg) > budget:
                continue
            live += len(arg)
        bounded.append((op, arg))
    return bounded


def signature(response):
    """Everything observable about one response, for exact diffing."""
    if response.result is not None:
        return (response.kind, response.status, response.result.hit,
                response.result.address, response.result.match_vector)
    if response.stats is not None:
        return (response.kind, response.status, response.stats.words)
    return (response.kind, response.status)


async def run_network_tape(workload, *, kill_at=None):
    """The tape through the full network stack; returns (signatures,
    final content hash)."""
    service = CamService(make_cam(), max_delay_s=0.001, max_batch=64)
    await service.start()
    server = CamServer(service, port=0)
    await server.start()
    try:
        host, port = server.address
        async with CamClient(host, port, max_retries=6,
                             backoff_s=0.005) as client:
            out = []
            for index, (op, arg) in enumerate(workload):
                if kill_at is not None and index == kill_at:
                    client.kill_connections()
                if op == "insert":
                    out.append(signature(await client.insert(arg)))
                elif op == "lookup":
                    out.append(signature(await client.lookup(arg)))
                else:
                    out.append(signature(await client.delete(arg)))
        content = service.cam.snapshot().content_hash()
        return out, content, server
    finally:
        await server.stop()
        await service.stop()


async def run_inprocess_tape(workload):
    service = CamService(make_cam(), max_delay_s=0.001, max_batch=64)
    out = []
    async with service:
        for op, arg in workload:
            if op == "insert":
                out.append(signature(await service.insert(arg)))
            elif op == "lookup":
                out.append(signature(await service.lookup(arg)))
            else:
                out.append(signature(await service.delete(arg)))
        content = service.cam.snapshot().content_hash()
    return out, content


def run_reference_tape(workload):
    """The golden model's view of the same tape (lookup answers only
    -- the reference has no service statuses or update stats)."""
    gold = ReferenceCam(64)
    out = []
    for op, arg in workload:
        if op == "insert":
            gold.update([binary_entry(v, WIDTH) for v in arg])
            out.append(None)
        elif op == "lookup":
            result = gold.search(arg)
            out.append((result.hit, result.address, result.match_vector))
        else:
            result = gold.delete(arg)
            out.append((result.hit, result.address, result.match_vector))
    return out


@given(workload=ops)
@common_settings
def test_network_path_bit_identical_to_in_process(workload):
    workload = bound_workload(workload)
    if not workload:
        return
    net, net_hash, _ = asyncio.run(run_network_tape(workload))
    local, local_hash = asyncio.run(run_inprocess_tape(workload))
    assert net == local, "network and in-process responses diverge"
    assert net_hash == local_hash, "final CAM contents diverge"
    gold = run_reference_tape(workload)
    for net_sig, gold_sig in zip(net, gold):
        if gold_sig is None:
            continue
        assert net_sig[1] == "ok"
        assert net_sig[2:] == gold_sig, \
            "network answer diverges from the reference model"


@given(workload=ops, data=st.data())
@common_settings
def test_network_path_survives_connection_kill(workload, data):
    """A mid-tape connection kill must change *nothing observable*:
    bit-identical responses, zero lost or duplicated updates."""
    workload = bound_workload(workload)
    if not workload:
        return
    kill_at = data.draw(
        st.integers(min_value=0, max_value=len(workload) - 1)
    )
    net, net_hash, server = asyncio.run(
        run_network_tape(workload, kill_at=kill_at)
    )
    local, local_hash = asyncio.run(run_inprocess_tape(workload))
    assert net == local, \
        f"responses diverge after a kill before op {kill_at}"
    assert net_hash == local_hash, \
        "a connection kill lost or duplicated an update"
    assert server.stats.decode_errors == 0


def test_kill_during_every_insert_never_duplicates():
    """Deterministic worst case: sever the connection immediately
    after *every* insert hits the wire."""

    async def scenario():
        service = CamService(make_cam(), max_delay_s=0.001)
        await service.start()
        server = CamServer(service, port=0)
        await server.start()
        try:
            host, port = server.address
            async with CamClient(host, port, max_retries=6,
                                 backoff_s=0.005) as client:
                expected = 0
                for wave in range(8):
                    words = [wave * 4 + i for i in range(1, 4)]
                    pending = asyncio.ensure_future(client.insert(words))
                    for _ in range(wave % 3):
                        await asyncio.sleep(0)
                    client.kill_connections()
                    response = await pending
                    assert response.ok and response.stats.words == 3
                    expected += 3
                assert service.cam.occupancy == expected
        finally:
            await server.stop()
            await service.stop()

    asyncio.run(scenario())
