"""Load generator: spec validation, both loop modes, manifests."""

import asyncio

import pytest

from repro import obs
from repro.core import unit_for_entries
from repro.errors import ConfigError
from repro.net import (
    CamClient,
    CamServer,
    LoadgenSpec,
    run_loadgen,
    table09_probe_stream,
)
from repro.service import CamService, ShardedCam


def make_cam():
    config = unit_for_entries(128, block_size=16, data_width=24,
                              bus_width=96)
    return ShardedCam(config, shards=2, engine="batch")


def run_spec(spec, **loadgen_kwargs):
    async def scenario():
        service = CamService(make_cam(), max_delay_s=0.001, max_batch=64)
        await service.start()
        server = CamServer(service, port=0)
        await server.start()
        try:
            host, port = server.address
            async with CamClient(host, port, pool_size=spec.pool_size,
                                 pipelined=spec.pipelined,
                                 backoff_s=0.005) as client:
                return await run_loadgen(client, spec, **loadgen_kwargs)
        finally:
            await server.stop()
            await service.stop()

    return asyncio.run(scenario())


@pytest.mark.parametrize("kwargs", [
    {"mode": "bursty"},
    {"requests": 0},
    {"concurrency": 0},
    {"mode": "open", "rate": 0},
    {"batch": 0},
    {"kill_after": -1},
])
def test_spec_validation(kwargs):
    with pytest.raises(ConfigError):
        LoadgenSpec(**kwargs)


def test_table09_probe_stream_is_deterministic():
    stored_a, probes_a = table09_probe_stream(128, seed=3)
    stored_b, probes_b = table09_probe_stream(128, seed=3)
    assert stored_a == stored_b and probes_a == probes_b
    assert 0 < len(stored_a) <= int(128 * 0.6)
    assert probes_a
    stored_c, _ = table09_probe_stream(128, seed=4)
    assert stored_c != stored_a


def test_closed_loop_run():
    spec = LoadgenSpec(mode="closed", requests=40, concurrency=4)
    report = run_spec(spec)
    assert report.requests == 40
    assert report.errors == 0
    assert report.ok == 40
    assert report.stored_words > 0  # seeded an empty server
    assert report.keys_probed == 40
    assert 0 < report.hits <= report.keys_probed
    assert report.wall_s > 0 and report.achieved_rps > 0
    assert len(report.latencies_s) == 40


def test_open_loop_run_records_offered_rate():
    spec = LoadgenSpec(mode="open", requests=30, concurrency=8,
                       rate=5000.0, batch=2)
    report = run_spec(spec)
    assert report.requests == 30
    assert report.keys_probed == 60
    assert report.errors == 0
    assert report.offered_rps == 5000.0


def test_kill_after_recovers_with_zero_errors():
    spec = LoadgenSpec(mode="closed", requests=60, concurrency=4,
                       kill_after=20)
    report = run_spec(spec)
    assert report.kills == 1
    assert report.errors == 0, "retries must absorb the kill"
    assert report.requests == 60


def test_seed_phase_skipped_when_server_populated():
    stored, probes = table09_probe_stream(128, seed=3)

    async def scenario():
        service = CamService(make_cam(), max_delay_s=0.001)
        await service.start()
        server = CamServer(service, port=0)
        await server.start()
        try:
            host, port = server.address
            async with CamClient(host, port) as client:
                spec = LoadgenSpec(requests=10, concurrency=2)
                first = await run_loadgen(client, spec, stored=stored,
                                          probes=probes)
                second = await run_loadgen(client, spec, stored=stored,
                                           probes=probes)
                return first, second
        finally:
            await server.stop()
            await service.stop()

    first, second = asyncio.run(scenario())
    assert first.stored_words > 0
    assert second.stored_words == 0  # occupancy non-zero: no re-seed
    assert first.hits == second.hits  # same probes, same content


def test_manifest_is_schema_valid():
    obs.reset()
    obs.enable(tracing=False)
    try:
        spec = LoadgenSpec(requests=12, concurrency=2, kill_after=4)
        report = run_spec(spec)
        manifest = report.manifest(spec)
        obs.validate_manifest(manifest)
        assert manifest["name"] == "net_loadgen"
        assert manifest["config"]["kill_after"] == 4
        assert manifest["extra"]["kills"] == 1
        assert manifest["extra"]["errors"] == 0
        assert manifest["extra"]["achieved_rps"] > 0
        assert "latency_p99_ms" in manifest["extra"]
    finally:
        obs.disable()
        obs.reset()
