"""CamServer + CamClient end to end over loopback.

No pytest-asyncio in the toolchain: every scenario is a coroutine run
to completion with ``asyncio.run`` inside a plain sync test (same
idiom as ``tests/service/test_async_service.py``).
"""

import asyncio

import pytest

from repro.core import unit_for_entries
from repro.errors import (
    ConfigError,
    FrameTooLargeError,
    NetError,
    ProtocolError,
    ServiceOverloadError,
)
from repro.net import CamClient, CamServer, protocol
from repro.net.protocol import Opcode
from repro.service import CamService, ShardedCam

WIDTH = 16


def make_cam(shards=2, entries=64):
    config = unit_for_entries(entries, block_size=16, data_width=WIDTH,
                              bus_width=128)
    return ShardedCam(config, shards=shards, engine="batch")


def run(coro):
    return asyncio.run(coro)


def serving(cam=None, *, service_kwargs=None, **server_kwargs):
    """Context helper: started CamService wrapped by a CamServer."""

    class _Ctx:
        async def __aenter__(self):
            self.service = CamService(cam or make_cam(),
                                      **(service_kwargs or {}))
            await self.service.start()
            self.server = CamServer(self.service, port=0, **server_kwargs)
            await self.server.start()
            return self.server

        async def __aexit__(self, exc_type, exc, tb):
            await self.server.stop()
            await self.service.stop()

    return _Ctx()


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"max_connections": 0},
    {"idle_timeout_s": 0},
    {"request_timeout_s": -1},
    {"dedupe_capacity": 0},
])
def test_server_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigError):
        CamServer(CamService(make_cam()), **kwargs)


@pytest.mark.parametrize("kwargs", [
    {"pool_size": 0},
    {"request_timeout_s": 0},
    {"max_retries": -1},
    {"backoff_s": 0},
    {"backoff_s": 0.5, "backoff_max_s": 0.1},
])
def test_client_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigError):
        CamClient("127.0.0.1", 1, **kwargs)


# ----------------------------------------------------------------------
# request/response basics
# ----------------------------------------------------------------------
def test_full_request_surface_over_loopback():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            async with CamClient(host, port) as client:
                inserted = await client.insert([7, 42, 99])
                assert inserted.ok and inserted.stats.words == 3

                hit = await client.lookup(42)
                assert hit.ok and hit.result.hit

                miss = await client.lookup(1234)
                assert miss.ok and not miss.result.hit

                deleted = await client.delete(42)
                assert deleted.ok and deleted.result.hit
                assert not (await client.lookup(42)).result.hit

                many = await client.lookup_many([7, 99, 5000])
                assert [r.result.hit for r in many] == [True, True, False]

                assert await client.ping(b"echo") < 1.0

                stats = await client.stats()
                # occupancy counts delete holes; live entries do not
                assert stats["cam"]["occupancy"] == 3
                assert stats["server"]["decode_errors"] == 0

                snap = await client.snapshot()
                assert snap.live_entries == 2
    run(scenario())


def test_pipelined_requests_share_one_connection():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            async with CamClient(host, port, pool_size=1) as client:
                await client.insert(list(range(1, 33)))
                responses = await asyncio.gather(*[
                    client.lookup(key) for key in range(1, 33)
                ])
                assert all(r.ok and r.result.hit for r in responses)
            assert server.stats.connections_opened == 1
    run(scenario())


def test_batch_lookup_is_one_frame():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            async with CamClient(host, port) as client:
                await client.insert([1, 2, 3])
                before = server.stats.frames_in
                await client.lookup_many(list(range(1, 17)))
                assert server.stats.frames_in == before + 1
    run(scenario())


# ----------------------------------------------------------------------
# limits
# ----------------------------------------------------------------------
def test_max_connections_rejects_excess_with_overloaded():
    async def scenario():
        async with serving(max_connections=1) as server:
            host, port = server.address
            async with CamClient(host, port) as first:
                await first.ping()
                extra = CamClient(host, port, max_retries=0)
                with pytest.raises((ServiceOverloadError, NetError)):
                    async with extra:
                        await extra.ping()
                assert server.stats.connections_rejected >= 1
    run(scenario())


def test_oversized_frame_answered_then_connection_dropped():
    async def scenario():
        async with serving(max_frame_size=128) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_frame(
                Opcode.PING, 1, b"x" * 4096
            ))
            await writer.drain()
            decoder = protocol.FrameDecoder()
            frames = []
            while not frames:
                data = await reader.read(4096)
                assert data, "server hung up without an error frame"
                frames = decoder.feed(data)
            assert frames[0].opcode is Opcode.ERROR
            code, _ = protocol.decode_error(frames[0].payload)
            assert code == protocol.ErrorCode.FRAME_TOO_LARGE
            assert await reader.read(4096) == b""  # then: hang up
            writer.close()
            assert server.stats.decode_errors == 1
    run(scenario())


def test_garbage_bytes_counted_as_decode_error():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET / HTTP/1.1\r\n\r\n")
            await writer.drain()
            data = await reader.read(4096)
            frame = protocol.decode_frame(data)
            assert frame.opcode is Opcode.ERROR
            writer.close()
            assert server.stats.decode_errors == 1
    run(scenario())


def test_idle_timeout_closes_connection():
    async def scenario():
        async with serving(idle_timeout_s=0.05) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            assert await reader.read(4096) == b""  # closed on us
            writer.close()
            assert server.stats.idle_closed == 1
    run(scenario())


def test_response_opcode_from_client_is_rejected():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_frame(Opcode.PONG, 9, b""))
            await writer.drain()
            frame = protocol.decode_frame(await reader.read(4096))
            assert frame.opcode is Opcode.ERROR
            assert frame.request_id == 9
            writer.close()
    run(scenario())


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
def test_drain_completes_in_flight_and_rejects_new():
    """The ISSUE acceptance scenario: requests admitted before drain
    complete successfully; frames arriving during the drain window
    resolve as RETRY_LATER; nothing is torn down mid-parse."""

    async def scenario():
        cam = make_cam()
        # A long micro-batch window keeps admitted requests parked in
        # the service queue, so drain provably overlaps them.
        async with serving(cam,
                           service_kwargs={"max_delay_s": 0.1,
                                           "max_batch": 64}) as server:
            host, port = server.address
            async with CamClient(host, port, max_retries=0) as client:
                await client.insert([5, 6, 7])
                in_flight = [asyncio.ensure_future(client.lookup(5))
                             for _ in range(16)]
                # Wait until every frame is admitted by the service...
                while server.service.stats.admitted < 17:
                    await asyncio.sleep(0.001)
                # ...then drain while they are still queued.
                drain = asyncio.ensure_future(server.stop())
                await asyncio.sleep(0.005)
                late = asyncio.ensure_future(client.lookup(6))
                responses = await asyncio.gather(*in_flight)
                assert all(r.ok and r.result.hit for r in responses), \
                    "in-flight requests must complete during drain"
                with pytest.raises(NetError, match="draining"):
                    await late
                await drain
            assert server.stats.decode_errors == 0
            assert server.stats.retry_later >= 1
    run(scenario())


def test_connections_during_drain_are_turned_away():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            async with CamClient(host, port) as client:
                await client.ping()
                await server.stop()
                late = CamClient(host, port, max_retries=0)
                try:
                    # Lazy connect: the refused connection surfaces as
                    # a typed NetError, not a raw OSError.
                    with pytest.raises(NetError):
                        await late.ping()
                finally:
                    await late.close()
    run(scenario())


# ----------------------------------------------------------------------
# connection loss, retry, exactly-once
# ----------------------------------------------------------------------
def test_client_reconnects_after_kill():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            async with CamClient(host, port) as client:
                await client.insert([11, 22])
                client.kill_connections()
                response = await client.lookup(11)
                assert response.ok and response.result.hit
                assert client.kills == 1
            assert server.stats.connections_opened == 2
    run(scenario())


def test_mutations_exactly_once_across_kills():
    """Retried INSERT frames reuse their idempotency token, so a kill
    storm cannot duplicate (or lose) updates."""

    async def scenario():
        async with serving() as server:
            host, port = server.address
            async with CamClient(host, port, max_retries=5) as client:
                expected = 0
                for wave in range(6):
                    words = [wave * 10 + i for i in range(1, 4)]
                    pending = asyncio.ensure_future(client.insert(words))
                    # Let the frame reach the wire (and possibly the
                    # server) before severing, so some waves retry a
                    # mutation the server already applied.
                    for _ in range(wave):
                        await asyncio.sleep(0)
                    client.kill_connections()
                    response = await pending
                    assert response.ok
                    expected += len(words)
                stats = await client.stats()
                assert stats["cam"]["occupancy"] == expected
            assert server.stats.decode_errors == 0
    run(scenario())


def test_dedupe_cache_answers_repeated_token():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            token = b"t" * protocol.TOKEN_SIZE
            payload = protocol.encode_mutation(token, [77])
            for request_id in (1, 2):
                writer.write(protocol.encode_frame(
                    Opcode.INSERT, request_id, payload
                ))
            await writer.drain()
            decoder = protocol.FrameDecoder()
            frames = []
            while len(frames) < 2:
                frames.extend(decoder.feed(await reader.read(4096)))
            assert [f.opcode for f in frames] == [Opcode.UPDATED] * 2
            assert frames[0].payload == frames[1].payload
            writer.close()
            assert server.stats.dedupe_hits == 1
            assert server.service.cam.occupancy == 1  # applied once
    run(scenario())


def test_naive_client_serializes_requests():
    async def scenario():
        async with serving() as server:
            host, port = server.address
            async with CamClient(host, port, pipelined=False) as client:
                await client.insert([1, 2, 3])
                responses = await asyncio.gather(*[
                    client.lookup(k) for k in (1, 2, 3)
                ])
                assert all(r.ok and r.result.hit for r in responses)
    run(scenario())


def test_server_request_timeout_sends_timeout_error_frame():
    async def scenario():
        # A huge micro-batch window parks lookups far past the server's
        # per-request deadline, forcing the TIMEOUT error path.
        async with serving(service_kwargs={"max_delay_s": 5.0,
                                           "max_batch": 1024},
                           request_timeout_s=0.05) as server:
            host, port = server.address
            async with CamClient(host, port, max_retries=0) as client:
                with pytest.raises(NetError, match="deadline"):
                    await client.lookup(1)
            assert server.stats.errors_sent >= 1
    run(scenario())
