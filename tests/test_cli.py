"""Unit tests for the dsp-cam command-line interface."""

import pytest

from repro import __version__
from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_info(capsys):
    code, out, _ = run(capsys, "info")
    assert code == 0
    assert "Alveo U250" in out
    assert "table9" in out


def test_version(capsys):
    with pytest.raises(SystemExit) as exit_info:
        main(["--version"])
    assert exit_info.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_exhibit_table5(capsys):
    code, out, _ = run(capsys, "exhibit", "table5")
    assert code == 0
    assert "Table V" in out
    assert "binary" in out and "ternary" in out and "range" in out


def test_exhibit_fig1(capsys):
    code, out, _ = run(capsys, "exhibit", "fig1")
    assert code == 0
    assert "Figure 1" in out
    assert "multi_query" in out


def test_exhibit_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["exhibit", "table99"])


def test_demo(capsys):
    code, out, _ = run(capsys, "demo", "--entries", "128", "--groups", "2")
    assert code == 0
    assert "hit=True" in out
    assert "hit=False" in out


def test_generate_hdl(tmp_path, capsys):
    code, out, _ = run(
        capsys, "generate-hdl", "--out", str(tmp_path / "hdl"),
        "--entries", "256", "--block-size", "64",
    )
    assert code == 0
    assert (tmp_path / "hdl" / "cam_unit.v").exists()
    assert "4 blocks x 64 cells" in out


def test_tc_single_dataset(capsys):
    code, out, _ = run(
        capsys, "tc", "--dataset", "as20000102", "--max-edges", "8000"
    )
    assert code == 0
    assert "as20000102" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])
