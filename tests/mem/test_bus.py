"""Unit tests for the streaming-bus arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.mem import StreamBus


def test_case_study_bus():
    bus = StreamBus(width_bits=512, word_bits=32)
    assert bus.words_per_beat == 16


def test_words_per_beat_floors():
    assert StreamBus(512, 48).words_per_beat == 10
    assert StreamBus(64, 48).words_per_beat == 1


def test_beats_for_words():
    bus = StreamBus(512, 32)
    assert bus.beats_for_words(0) == 0
    assert bus.beats_for_words(1) == 1
    assert bus.beats_for_words(16) == 1
    assert bus.beats_for_words(17) == 2
    assert bus.beats_for_words(160) == 10


def test_bytes_for_words():
    assert StreamBus(512, 32).bytes_for_words(16) == 64
    assert StreamBus(512, 48).bytes_for_words(2) == 12


def test_validation():
    with pytest.raises(ConfigError):
        StreamBus(0, 32)
    with pytest.raises(ConfigError):
        StreamBus(32, 64)
    bus = StreamBus(512, 32)
    with pytest.raises(ConfigError):
        bus.beats_for_words(-1)
    with pytest.raises(ConfigError):
        bus.bytes_for_words(-1)
