"""Unit tests for the DDR channel model."""

import pytest

from repro.errors import ConfigError
from repro.mem import U250_SINGLE_CHANNEL, DdrChannel


def test_default_channel_is_ddr4_2400():
    channel = U250_SINGLE_CHANNEL
    assert channel.peak_bandwidth_gbps == pytest.approx(19.2)
    assert channel.interface_bits == 512
    assert channel.interface_bytes == 64


def test_validation():
    with pytest.raises(ConfigError):
        DdrChannel(peak_bandwidth_gbps=0)
    with pytest.raises(ConfigError):
        DdrChannel(interface_bits=100)  # not a byte multiple
    with pytest.raises(ConfigError):
        DdrChannel(efficiency=0.0)
    with pytest.raises(ConfigError):
        DdrChannel(efficiency=1.5)
    with pytest.raises(ConfigError):
        DdrChannel(access_latency_ns=-1)


def test_beats_for_bytes():
    channel = DdrChannel()
    assert channel.beats_for_bytes(0) == 0
    assert channel.beats_for_bytes(1) == 1
    assert channel.beats_for_bytes(64) == 1
    assert channel.beats_for_bytes(65) == 2
    with pytest.raises(ConfigError):
        channel.beats_for_bytes(-1)


def test_stream_cycles_interface_bound():
    """At 300 MHz x 512 bits the kernel interface (19.2 GB/s) is the
    bottleneck for a sustained stream, not the DRAM."""
    channel = DdrChannel(efficiency=1.0)
    cycles = channel.stream_cycles(64 * 1000, frequency_mhz=300.0)
    assert cycles == 1000


def test_stream_cycles_dram_bound():
    """At a faster kernel clock the DRAM bandwidth dominates."""
    channel = DdrChannel(efficiency=0.5)  # 9.6 GB/s sustained
    cycles = channel.stream_cycles(64 * 1000, frequency_mhz=300.0)
    assert cycles == 2000  # half bandwidth -> twice the beats


def test_random_access_cycles():
    channel = DdrChannel(access_latency_ns=60.0)
    assert channel.random_access_cycles(300.0) == 18
    assert channel.random_access_cycles(100.0) == 6


def test_frequency_validation():
    channel = DdrChannel()
    with pytest.raises(ConfigError):
        channel.stream_cycles(64, frequency_mhz=0)
    with pytest.raises(ConfigError):
        channel.random_access_cycles(-1)
