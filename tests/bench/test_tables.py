"""Unit tests for the bench table renderer."""

import pytest

from repro.bench import TableData, compare_columns, fmt, ratio, within


def test_fmt():
    assert fmt(None) == "-"
    assert fmt(3) == "3"
    assert fmt(3.0) == "3"
    assert fmt(3.14159, precision=2) == "3.14"
    assert fmt("x") == "x"
    assert fmt(True) == "yes"
    assert fmt(False) == "no"


def test_render_alignment():
    table = TableData(
        title="T", headers=["name", "value"],
        rows=[["alpha", 1], ["b", 22.5]],
        notes=["a note"],
    )
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "="
    assert "name" in lines[2] and "value" in lines[2]
    assert set(lines[3]) <= {"-", "+"}
    assert "alpha" in lines[4]
    assert "note: a note" in lines[-1]
    # All body lines align to the same width.
    assert len(set(len(line) for line in lines[2:6])) <= 2


def test_markdown_rendering():
    table = TableData("Title", ["a", "b"], [[1, None]], notes=["n"])
    md = table.to_markdown()
    assert md.startswith("### Title")
    assert "| a | b |" in md
    assert "| 1 | - |" in md
    assert "> n" in md


def test_ratio():
    assert ratio(2.0, 4.0) == pytest.approx(0.5)
    assert ratio(1.0, 0.0) is None
    assert ratio(1.0, None) is None


def test_within():
    assert within(100, 110, 0.1)
    assert not within(100, 120, 0.1)
    assert within(0, 0, 0.05)
    assert not within(1, 0, 0.05)


def test_compare_columns():
    table = compare_columns(
        ["metric", "measured", "paper"],
        ["latency", "throughput"],
        [6, 4800],
        [6, 4800],
        title="cmp",
    )
    assert len(table.rows) == 2
    assert table.rows[0] == ["latency", 6, 6]
