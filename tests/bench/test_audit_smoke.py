"""Audit-engine smoke tests for every benchmark script.

One fast, seeded test per ``benchmarks/bench_*.py`` script: each drives
a miniature version (<= 64 entries, <= 2 groups) of that benchmark's
session-facing workload through the differential *audit* engine
(``engine="audit"``; see :mod:`repro.core.batch`), which replays the
``--audit-sample`` fraction of episodes through the cycle-accurate
shadow and asserts bit-exact result and cycle agreement. Any analytic
claim a benchmark leans on (latency formulas, beat counts, buffer
penalties) is re-derived here on audited hardware.

Run with ``--audit-sample=1.0`` to shadow every episode; the default
sample keeps the suite fast while still auditing a deterministic
(seeded) subset.
"""

from dataclasses import replace

import pytest

from repro.core import CamType, WideCamSession, open_session, unit_for_entries

SEED = 20250806


def _audit_session(config, audit_sample):
    return open_session(config, engine="audit", audit_sample=audit_sample,
                        audit_seed=SEED, strict=True)


def _small_config(**overrides):
    params = dict(total_entries=64, block_size=32, data_width=16,
                  bus_width=64, default_groups=2)
    params.update(overrides)
    total = params.pop("total_entries")
    return unit_for_entries(total, **params)


@pytest.fixture
def audited(audit_sample):
    """Factory for strict audit sessions at the CLI-selected sample."""

    def _make(config=None, **overrides):
        return _audit_session(config or _small_config(**overrides),
                              audit_sample)

    return _make


def _assert_clean(session):
    report = session.audit_report
    assert report.passed, report.summary()


# ----------------------------------------------------------------------
# paper exhibits
# ----------------------------------------------------------------------
def test_fig01_characteristics_smoke(audited):
    """Fig. 1's claim: balanced single-digit update AND search latency."""
    session = audited()
    stats = session.update(list(range(8)))
    assert stats.cycles == session.update_latency + 1  # 2 beats
    session.search([3, 5])
    assert session.last_search_stats.cycles == session.search_latency
    _assert_clean(session)


def test_fig05_intersection_complexity_smoke(audit_sample):
    """CAM intersection equals the merge on a seeded list pair."""
    from repro.apps.tc import CamIntersector, merge_intersect

    intersector = CamIntersector(
        total_entries=64, block_size=32, engine="audit",
        audit_sample=audit_sample, audit_seed=SEED,
    )
    longer = list(range(0, 60, 2))
    shorter = list(range(0, 30, 3))
    common, cycles = intersector.intersect(longer, shorter)
    expected, _steps = merge_intersect(sorted(longer), sorted(shorter))
    assert common == expected
    assert cycles > 0
    _assert_clean(intersector.session)


def test_table01_survey_smoke(audited):
    """The surveyed feature set (ternary matching, priority encode)."""
    from repro.core import ternary_entry

    session = audited(cam_type=CamType.TERNARY)
    session.update([ternary_entry(0x10, 0x0F, 16),  # 0x10-0x1F
                    ternary_entry(0x20, 0x00, 16)])
    assert session.search_one(0x17).address == 0
    assert session.search_one(0x20).address == 1
    assert not session.search_one(0x30).hit
    _assert_clean(session)


def test_table05_cell_smoke(audited):
    """Table V's per-op latencies hold end to end on the audited unit."""
    session = audited()
    assert session.update([1]).cycles == session.update_latency
    session.search([1])
    assert session.last_search_stats.cycles == session.search_latency
    _assert_clean(session)


def test_table06_block_smoke(audited):
    """A single-block group behaves like Table VI's standalone block."""
    session = audited(total_entries=32, block_size=32, default_groups=1)
    session.update([5, 6, 7])
    result = session.search_one(6)
    assert result.hit and result.address == 1
    _assert_clean(session)


def test_table07_unit_scaling_smoke(audited):
    """Latency is size-invariant (Table VII): 32 vs 64 entries agree."""
    small = audited(total_entries=32, block_size=16)
    large = audited(total_entries=64, block_size=32)
    for session in (small, large):
        session.update([9])
        session.search([9])
    assert small.last_search_stats.cycles == large.last_search_stats.cycles
    assert small.last_update_stats.cycles == large.last_update_stats.cycles
    _assert_clean(small)
    _assert_clean(large)


def test_table08_unit_perf_smoke(audited):
    """Pipelined rate: B beats cost B + L - 1 cycles (II = 1)."""
    session = audited()
    session.update(list(range(32)))
    keys = list(range(16))  # M=2 -> 8 beats
    session.search(keys)
    assert session.last_search_stats.beats == 8
    assert session.last_search_stats.cycles == 8 + session.search_latency - 1
    _assert_clean(session)


def test_table09_triangle_counting_smoke(audit_sample):
    """The Table IX functional cross-check on a tiny seeded graph."""
    from repro.apps.tc import CamIntersector, verify_functional_equivalence
    from repro.graph import power_law

    graph = power_law(60, 150, triangle_fraction=0.4, seed=SEED)
    intersector = CamIntersector(
        total_entries=64, block_size=32, engine="audit",
        audit_sample=audit_sample, audit_seed=SEED,
    )
    verified = verify_functional_equivalence(
        graph, sample_edges=4, seed=SEED, intersector=intersector
    )
    assert verified >= 1
    _assert_clean(intersector.session)


# ----------------------------------------------------------------------
# ablations
# ----------------------------------------------------------------------
def test_ablation_baseline_crossover_smoke(audited):
    """The crossover argument's DSP side: a 6-cycle audited update,
    far below the transposed LUTRAM table's rewrite cost."""
    from repro.baselines import LutRamCam

    session = audited()
    stats = session.update([42])
    lut_update = LutRamCam(64, 16).cost().update_latency
    assert stats.cycles < lut_update
    _assert_clean(session)


def test_ablation_bus_width_smoke(audit_sample):
    """A wider bus packs more words per beat; both widths audit clean."""
    narrow = _audit_session(_small_config(bus_width=64), audit_sample)
    wide = _audit_session(_small_config(bus_width=128), audit_sample)
    words = list(range(16))
    narrow_stats = narrow.update(words)
    wide_stats = wide.update(words)
    assert wide_stats.beats < narrow_stats.beats
    assert wide_stats.cycles < narrow_stats.cycles
    _assert_clean(narrow)
    _assert_clean(wide)


def test_ablation_dynamic_updates_smoke(audit_sample):
    """The update-heavy DISTINCT operator on the audit engine."""
    from repro.apps.db import CamDistinct

    stream = [(i * 7) % 12 for i in range(30)]
    distinct = CamDistinct(total_entries=64, block_size=32, engine="audit",
                           audit_sample=audit_sample, audit_seed=SEED)
    unique, stats = distinct.distinct(stream)
    assert sorted(unique) == sorted(set(stream))
    assert stats.cycles > 0
    _assert_clean(distinct.session)


def test_ablation_encoder_buffer_smoke(audit_sample):
    """The forced output buffer costs exactly one audited cycle."""
    plain_config = _small_config()
    buffered_config = replace(
        plain_config, block=plain_config.block.with_buffer(True)
    )
    plain = _audit_session(plain_config, audit_sample)
    buffered = _audit_session(buffered_config, audit_sample)
    for session in (plain, buffered):
        session.update([3])
        session.search([3])
    assert buffered.last_search_stats.cycles \
        == plain.last_search_stats.cycles + 1
    _assert_clean(plain)
    _assert_clean(buffered)


def test_ablation_group_count_smoke(audit_sample):
    """More groups answer a key burst in fewer audited cycles."""
    one = _audit_session(_small_config(default_groups=1), audit_sample)
    two = _audit_session(_small_config(default_groups=2), audit_sample)
    keys = list(range(8))
    one.update(keys)
    two.update(keys)
    one.search(keys)
    two.search(keys)
    assert two.last_search_stats.beats == one.last_search_stats.beats // 2
    assert two.last_search_stats.cycles < one.last_search_stats.cycles
    _assert_clean(one)
    _assert_clean(two)


def test_ablation_tc_capacity_smoke(audit_sample):
    """Oversized lists are rejected, fitting lists intersect exactly."""
    from repro.apps.tc import CamIntersector
    from repro.errors import CapacityError

    intersector = CamIntersector(
        total_entries=64, block_size=32, engine="audit",
        audit_sample=audit_sample, audit_seed=SEED,
    )
    with pytest.raises(CapacityError):
        intersector.intersect(list(range(100)), [1, 2])
    common, _cycles = intersector.intersect(list(range(40)), [10, 11, 99])
    assert common == 2
    _assert_clean(intersector.session)


def test_ablation_wide_keys_smoke(audit_sample):
    """A two-lane 96-bit wide CAM runs both lanes on audit engines."""
    wide = WideCamSession(
        capacity=32, key_width=96, block_size=16, bus_width=128,
        engine="audit", audit_sample=audit_sample, audit_seed=SEED,
    )
    keys = [1 << 80, (1 << 80) | 1, 3]
    wide.update(keys)
    assert wide.contains(keys[0])
    assert not wide.contains(1 << 81)
    for lane in wide.lanes:
        _assert_clean(lane)
