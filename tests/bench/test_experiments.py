"""Unit tests for the exhibit generators (fast configurations only)."""

from repro.bench import (
    ALL_EXHIBITS,
    fig01_characteristics,
    table01_survey,
    table05_cell,
    table06_block,
    table07_unit_scaling,
    table08_unit_perf,
    table09_triangle_counting,
)


def test_registry_covers_every_exhibit():
    assert set(ALL_EXHIBITS) == {
        "fig1", "table1", "table5", "table6", "table7", "table8", "table9"
    }


def test_fig01_table_shape():
    table = fig01_characteristics()
    assert table.headers[0] == "family"
    assert len(table.rows) == 5
    assert table.rows[-1][0] == "Ours"


def test_table01_has_ten_rows():
    table = table01_survey()
    assert len(table.rows) == 10
    assert table.rows[-1][0] == "Ours"
    text = table.render()
    assert "Frac-TCAM" in text
    assert "9728 x 48 bits" in text


def test_table05_rows():
    table = table05_cell()
    assert len(table.rows) == 3
    for row in table.rows:
        assert row[2] == 1 and row[3] == 2  # update, search


def test_table06_small_sweep():
    table = table06_block(sizes=(32, 64))
    assert table.headers == ["metric", "32", "64"]
    # 7 metrics x (measured + paper) rows.
    assert len(table.rows) == 14
    labels = [row[0] for row in table.rows]
    assert "update latency (measured)" in labels
    assert "frequency (MHz) (paper)" in labels


def test_table07_small_sweep():
    table = table07_unit_scaling(sizes=(512, 1024))
    assert len(table.rows) == 2
    measured_lut, paper_lut = table.rows[0][1], table.rows[0][2]
    assert measured_lut == paper_lut == 2491


def test_table08_small_sweep():
    table = table08_unit_perf(sizes=(128, 512), block_size=128)
    assert table.headers == ["metric", "128", "512"]
    measured_update = table.rows[0]
    assert measured_update[1:] == [6, 6]


def test_table09_two_datasets():
    table = table09_triangle_counting(
        datasets=["roadNet-TX", "as20000102"], max_edges=10_000, seed=0
    )
    assert len(table.rows) == 3  # two datasets + average row
    assert table.rows[-1][0] == "average"
    assert table.rows[-1][-1] == 4.92
