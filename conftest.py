"""Repo-root pytest configuration shared by tests/ and benchmarks/.

Registers the command-line options both suites consume, so they can be
run together (``pytest tests benchmarks``) without duplicate-option
errors from per-directory conftests:

- ``--cam-engine {cycle,batch,audit}``: execution engine the
  session-driven tests and benchmarks use (see :mod:`repro.core.batch`).
- ``--audit-sample FRACTION``: episode-sampling rate when the audit
  engine is selected; 1.0 replays everything through the
  cycle-accurate shadow.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--cam-engine",
        default="batch",
        choices=["cycle", "batch", "audit"],
        help="CAM execution engine for engine-parameterised tests/benchmarks",
    )
    parser.addoption(
        "--audit-sample",
        type=float,
        default=0.25,
        help="fraction of reset-bounded episodes the audit engine replays "
             "through the cycle-accurate shadow (only with --cam-engine=audit)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (deselect with -m 'not slow')"
    )
