#!/usr/bin/env python3
"""Generate the parameterised Verilog templates for a CAM configuration.

The paper ships its artifact as SystemVerilog templates filled from the
Table III parameters; this example generates the equivalent RTL for the
triangle-counting case-study configuration and for a maximal unit, and
shows that the RTL parameters mirror the simulated model's.

Run:  python examples/verilog_generation.py [output_dir]
"""

import sys

from repro.core import CamType, unit_for_entries
from repro.hdlgen import generate_project, write_project


def summarise(name: str, config) -> None:
    project = generate_project(config)
    total_lines = sum(len(source.splitlines()) for source in project.values())
    print(f"{name}:")
    print(f"  blocks          : {config.num_blocks} x {config.block.block_size}")
    print(f"  data width      : {config.data_width} bits")
    print(f"  encoder buffer  : {'on' if config.block_buffered else 'off'}")
    print(f"  model latencies : update {config.update_latency} / "
          f"search {config.search_latency} cycles")
    for file_name, source in project.items():
        print(f"  {file_name:12s} {len(source.splitlines()):4d} lines")
    print(f"  total           : {total_lines} lines of Verilog")


def main() -> None:
    case_study = unit_for_entries(
        2048, block_size=128, data_width=32, bus_width=512,
        cam_type=CamType.BINARY,
    )
    maximal = unit_for_entries(
        9728, block_size=256, data_width=48, bus_width=512,
        cam_type=CamType.TERNARY,
    )
    summarise("case-study unit (section V-B)", case_study)
    print()
    summarise("maximal unit (Table VII, 9728 x 48)", maximal)

    if len(sys.argv) > 1:
        out_dir = sys.argv[1]
        written = write_project(case_study, out_dir)
        print(f"\nwrote {len(written)} files to {out_dir}:")
        for path in written.values():
            print(f"  {path}")
    else:
        print("\n(pass an output directory to write the .v files)")


if __name__ == "__main__":
    main()
