#!/usr/bin/env python3
"""Range-matching CAM as a database predicate index.

The paper's third CAM flavour (RMCAM) targets database indexing and
firewall rules: each stored entry matches a *range* of keys. The DSP
MASK can only express aligned power-of-two ranges (section III-A), so
arbitrary predicate ranges are first expanded -- the same machinery the
packet classifier uses -- and multiple entries map back to one
predicate.

The demo indexes price-band predicates over a product table and runs
point queries through the cycle-accurate CAM, comparing against a scan.

Run:  python examples/database_range_index.py
"""

import numpy as np

from repro.apps.packet import expand_range
import repro
from repro.core import CamType, range_entry, unit_for_entries

PRICE_BITS = 20


def build_index(session, bands):
    """Compile predicate bands into RMCAM entries; returns entry->band."""
    entry_band = []
    for band_index, (label, lo, hi) in enumerate(bands):
        chunks = expand_range(lo, hi, PRICE_BITS)
        entries = [range_entry(start, end, PRICE_BITS)
                   for start, end in chunks]
        session.update(entries)
        entry_band.extend([band_index] * len(entries))
        print(f"  band {label:12s} [{lo:>6}, {hi:>6}] -> "
              f"{len(entries)} CAM entries")
    return entry_band


def main() -> None:
    bands = [
        ("budget", 0, 2_499),
        ("mid-range", 2_500, 9_999),
        ("premium", 10_000, 49_999),
        ("luxury", 50_000, 1_048_575),
    ]
    session = repro.open_session(unit_for_entries(
        128, block_size=64, data_width=PRICE_BITS,
        bus_width=512, cam_type=CamType.RANGE,
    ))
    print("compiling price-band predicates into the RMCAM")
    entry_band = build_index(session, bands)
    print(f"  total entries: {session.occupancy} "
          f"(lookup latency {session.unit.search_latency} cycles)")

    rng = np.random.default_rng(42)
    prices = rng.integers(0, 1 << PRICE_BITS, size=12)
    results = session.search(prices.tolist())

    print("\npoint queries (CAM vs scan):")
    for price, result in zip(prices.tolist(), results):
        assert result.hit, "bands cover the whole domain"
        cam_band = bands[entry_band[result.address]][0]
        scan_band = next(
            label for label, lo, hi in bands if lo <= price <= hi
        )
        assert cam_band == scan_band
        print(f"  price {price:>7} -> {cam_band:12s} (scan agrees)")

    stats = session.last_search_stats
    print(f"\n{stats.keys} queries in {stats.cycles} cycles "
          "(pipelined, II=1)")


if __name__ == "__main__":
    main()
