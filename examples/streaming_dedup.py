#!/usr/bin/env python3
"""Database operators on the CAM: streaming DISTINCT and equi-join.

The update-heavy pattern the paper's section II motivates: DISTINCT
interleaves a search and a conditional insert per row (insert on the
dependency path), and the equi-join stores the build relation in the
CAM and streams probes through at one per cycle. Both run on the
cycle-accurate model, with the per-family cost comparison showing why
slow-update CAM designs collapse on this workload.

Run:  python examples/streaming_dedup.py
"""

import numpy as np

from repro.apps.db import (
    CamDistinct,
    CamJoin,
    model_distinct_cycles,
    reference_join,
)
from repro.baselines import BramCam, LutRamCam


def distinct_demo() -> None:
    print("streaming DISTINCT (search + conditional insert per row)")
    rng = np.random.default_rng(11)
    stream = rng.integers(0, 120, size=400).tolist()

    engine = CamDistinct(total_entries=256, block_size=64)
    unique, stats = engine.distinct(stream)
    assert unique == list(dict.fromkeys(stream))
    print(f"  {stats.input_rows} rows -> {stats.unique_rows} unique in "
          f"{stats.cycles} cycles ({stats.cycles_per_row:.1f}/row)")

    print("\n  same workload, per-family analytic cost:")
    ours = engine.config
    print(f"    {'design':14s} {'update':>6s} {'search':>6s} {'cycles':>9s}")
    for label, update, search in [
        ("ours", ours.update_latency, ours.search_latency),
        ("LUTRAM TCAM", LutRamCam(256, 32).cost().update_latency,
         LutRamCam(256, 32).cost().search_latency),
        ("BRAM TCAM", BramCam(256, 32).cost().update_latency,
         BramCam(256, 32).cost().search_latency),
    ]:
        cycles = model_distinct_cycles(
            stats.input_rows, stats.unique_rows, search, update
        )
        print(f"    {label:14s} {update:>6d} {search:>6d} {cycles:>9d}")


def join_demo() -> None:
    print("\nCAM equi-join (build side stored, probe side streamed)")
    rng = np.random.default_rng(12)
    build = rng.integers(0, 500, size=200).tolist()
    probe = rng.integers(0, 500, size=300).tolist()

    engine = CamJoin(total_entries=256, block_size=64)
    pairs, stats = engine.join(build, probe)
    expected = reference_join(build, probe)
    assert sorted(pairs) == sorted(expected)
    print(f"  build {stats.build_rows} x probe {stats.probe_rows} -> "
          f"{stats.output_rows} matches in {stats.cycles} cycles "
          f"({stats.passes} pass)")
    print(f"  nested-loop comparisons avoided: "
          f"{stats.build_rows * stats.probe_rows}")


def main() -> None:
    distinct_demo()
    join_demo()


if __name__ == "__main__":
    main()
