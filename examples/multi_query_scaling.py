#!/usr/bin/env python3
"""Multi-query scaling: throughput vs runtime group count.

Demonstrates the paper's headline architectural feature -- the CAM unit
reconfigures at runtime into M logical groups serving M concurrent
queries -- by measuring, in the cycle simulator, how long a fixed batch
of searches takes at every legal group count of one unit.

Run:  python examples/multi_query_scaling.py
"""

import repro
from repro.core import unit_for_entries

TOTAL_ENTRIES = 512
BLOCK_SIZE = 64  # 8 blocks: group counts 1, 2, 4, 8
BATCH = 96


def legal_group_counts(num_blocks: int):
    return [m for m in range(1, num_blocks + 1) if num_blocks % m == 0]


def main() -> None:
    config = unit_for_entries(
        TOTAL_ENTRIES, block_size=BLOCK_SIZE, data_width=32,
        bus_width=512, default_groups=1,
    )
    session = repro.open_session(config)
    counts = legal_group_counts(config.num_blocks)
    print(f"unit: {config.num_blocks} blocks x {BLOCK_SIZE} cells, "
          f"search latency {config.search_latency} cycles")
    print(f"searching a batch of {BATCH} keys at each group count:\n")
    print(f"  {'M':>3} {'capacity/group':>15} {'cycles':>7} "
          f"{'keys/cycle':>11} {'speedup':>8}")

    baseline_cycles = None
    for m in counts:
        session.set_groups(m)
        stored = list(range(min(BATCH, session.capacity)))
        session.update(stored)
        keys = [stored[i % len(stored)] for i in range(BATCH)]
        results = session.search(keys)
        assert all(result.hit for result in results)
        cycles = session.last_search_stats.cycles
        if baseline_cycles is None:
            baseline_cycles = cycles
        print(f"  {m:>3} {session.capacity:>15} {cycles:>7} "
              f"{BATCH / cycles:>11.2f} {baseline_cycles / cycles:>8.2f}x")
        session.reset()

    print("\nThroughput scales with M while capacity per group shrinks "
          "(replicated content)\n-- the flexibility/capacity trade the "
          "paper's section III-C describes.")


if __name__ == "__main__":
    main()
