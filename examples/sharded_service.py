#!/usr/bin/env python3
"""The sharded async CAM service: partitioning, batching, isolation.

One CAM unit has fixed capacity; ``repro.open_session(config,
shards=N)`` puts N identically-configured units side by side behind a
shard policy while preserving single-CAM semantics -- the priority
encoder's lowest-address-wins contract holds *across* shard
boundaries. :class:`repro.service.CamService` then fronts the shards
with an asyncio scheduler: bounded admission, per-shard
micro-batching, per-request deadlines, poisoned-shard isolation.

This example shows:

1. cross-shard priority ties resolving exactly like one big CAM;
2. concurrent lookups coalescing into micro-batches;
3. a shard blowing up mid-run while the healthy shards keep serving;
4. replicated shards: a dead replica served around, then rebuilt live
   from its peer's snapshot and reinstated.

Run:  python examples/sharded_service.py
"""

import asyncio

import repro
from repro.core import ReferenceCam, binary_entry, unit_for_entries
from repro.service import CamService, FaultyBackend, ShardedCam

WIDTH = 16


def shard_config():
    """One shard: 64 entries of 16-bit keys (4 blocks x 16 cells)."""
    return unit_for_entries(64, block_size=16, data_width=WIDTH,
                            bus_width=128)


def global_priority_demo() -> None:
    print("1. global priority encoding across shards")
    cam = repro.open_session(shard_config(), engine="batch", shards=4,
                             policy="round_robin")
    reference = ReferenceCam(cam.capacity)
    words = [42, 7, 42, 9, 42]  # copies of 42 stripe over shards 0, 2, 0
    cam.update(words)
    reference.update([binary_entry(w, WIDTH) for w in words])
    ours, gold = cam.search_one(42), reference.search(42)
    print(f"   sharded : address={ours.address} "
          f"match_vector={ours.match_vector:#08b}")
    print(f"   one CAM : address={gold.address} "
          f"match_vector={gold.match_vector:#08b}")
    assert (ours.address, ours.match_vector) \
        == (gold.address, gold.match_vector)
    print("   -> the globally first-inserted copy wins, as in hardware\n")


async def batching_demo() -> None:
    print("2. concurrent lookups coalesce into micro-batches")
    cam = repro.open_session(shard_config(), engine="batch", shards=4)
    async with CamService(cam, max_batch=32, max_delay_s=0.005) as service:
        await service.insert(list(range(64)))
        responses = await asyncio.gather(
            *[service.lookup(key) for key in range(64)]
        )
    assert all(r.ok and r.result.hit for r in responses)
    stats = service.stats
    print(f"   {stats.dispatched_requests} requests in "
          f"{stats.dispatches} flushes "
          f"(mean occupancy {stats.mean_batch_occupancy:.1f})\n")


async def isolation_demo() -> None:
    print("3. per-shard failure isolation")

    def factory(index, cfg):
        session = repro.open_session(cfg, engine="batch",
                                     name=f"demo.shard{index}")
        if index == 1:
            return FaultyBackend(session, fail_after=4)
        return session

    cam = ShardedCam(shard_config(), shards=4, session_factory=factory)
    async with CamService(cam) as service:
        outcomes = {"ok": 0, "shard_failed": 0}
        for key in range(40):
            response = await service.lookup(key)
            outcomes[response.status] += 1
        print(f"   {outcomes['ok']} served, "
              f"{outcomes['shard_failed']} degraded to miss-with-error")
        print(f"   poisoned shards: {list(cam.poisoned_shards)} "
              f"(healthy shards never noticed)")
    assert cam.poisoned_shards == (1,)
    assert outcomes["ok"] > 0


async def recovery_demo() -> None:
    print("4. replication: failover, then live recovery")

    faulty = {}

    def replica_factory(shard, replica, cfg):
        session = repro.open_session(cfg, engine="batch",
                                     name=f"demo.shard{shard}.r{replica}")
        if shard == 0 and replica == 0:
            faulty[0] = FaultyBackend(session, fail_after=6)
            return faulty[0]
        return session

    cam = ShardedCam(shard_config(), shards=2, replicas=2,
                     replica_factory=replica_factory)
    async with CamService(cam) as service:
        await service.insert(list(range(24)))   # kills shard 0's replica 0
        hits = sum([(await service.lookup(k)).result.hit
                    for k in range(24)])
        print(f"   {hits}/24 keys still served (peer replica failed over)")
        print(f"   degraded shards: {list(cam.degraded_shards)}")
        assert hits == 24 and cam.poisoned_shards == ()

        faulty[0].heal()                        # ops swap the node
        repaired = await service.repair_shard(cam.degraded_shards[0])
        assert repaired and cam.degraded_shards == ()
        print(f"   repair_shard -> rebuilt from peer snapshot, "
              f"{service.stats.repairs_completed} repair(s) completed")


def main() -> None:
    global_priority_demo()
    asyncio.run(batching_demo())
    asyncio.run(isolation_demo())
    asyncio.run(recovery_demo())


if __name__ == "__main__":
    main()
