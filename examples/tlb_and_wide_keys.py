#!/usr/bin/env python3
"""Cache tag matching (TLB) and wide-key lookups.

Two more of the paper's motivating domains on the cycle-accurate CAM:

1. a fully-associative TLB -- the classic B-CAM "cache tag matching"
   role -- with FIFO replacement built on delete-by-content and the
   compaction routine an invalidate-only CAM needs;
2. 96-bit keys (e.g. flow digests) spanning two DSP lanes with
   AND-merged match vectors -- the wide-word extension.

Run:  python examples/tlb_and_wide_keys.py
"""

import numpy as np

from repro.apps.cache import CamTlb
from repro.core import WideCamSession, wide_ternary


def tlb_demo() -> None:
    print("fully-associative TLB (CAM tag match, FIFO replacement)")
    tlb = CamTlb(entries=16, vpn_bits=20)

    # A working set slightly larger than the TLB: sequential walks
    # with a hot region.
    rng = np.random.default_rng(5)
    hot = list(range(0x100, 0x10C))         # 12 hot pages
    cold = list(range(0x800, 0x880))        # 128 cold pages

    page_table = {}
    for step in range(600):
        vpn = int(rng.choice(hot)) if rng.random() < 0.8 else int(rng.choice(cold))
        frame = tlb.translate(vpn)
        if frame is None:
            frame = page_table.setdefault(vpn, 0x40000 + len(page_table))
            tlb.insert(vpn, frame)
        assert frame == page_table.get(vpn, frame)

    stats = tlb.stats
    print(f"  {stats.lookups} lookups: {stats.hit_rate:.1%} hit rate, "
          f"{stats.evictions} evictions, {stats.compactions} compactions")
    print(f"  {stats.cycles} simulated cycles "
          f"({stats.cycles / stats.lookups:.1f} per access)")


def wide_demo() -> None:
    print("\n96-bit keys across two DSP lanes (wide-word extension)")
    cam = WideCamSession(capacity=64, key_width=96, block_size=16,
                         bus_width=128)
    flows = [
        (0x2001_0DB8 << 64) | (0xDEAD_BEEF << 32) | 0x01BB,  # v6-ish tuple
        (0x2001_0DB8 << 64) | (0xCAFE_F00D << 32) | 0x0050,
        (0xFE80_0000 << 64) | (0x1234_5678 << 32) | 0x1A0B,
    ]
    cam.update(flows)
    print(f"  lanes: {cam.num_lanes} x 48 bits, "
          f"search latency {cam.search_latency} cycles, "
          f"{cam.resources().dsp} DSPs")
    for flow in flows:
        result = cam.search_one(flow)
        print(f"  flow {flow:024x} -> address {result.address}")
    near_miss = flows[0] ^ (1 << 80)  # differs only in the high lane
    print(f"  near miss (high-lane bit flipped): hit={cam.contains(near_miss)}")

    # Ternary wide entry: wildcard the low 32 bits (port/meta fields).
    cam.reset()
    cam.update([wide_ternary(flows[0], (1 << 32) - 1, 96)])
    assert cam.contains(flows[0] ^ 0xFFFF)
    print("  wide ternary entry with a 32-bit wildcard field: works")


def main() -> None:
    tlb_demo()
    wide_demo()


if __name__ == "__main__":
    main()
