#!/usr/bin/env python3
"""Triangle counting with the CAM accelerator (paper section V).

Recreates the case study at example scale:

1. generates a synthetic social graph,
2. verifies, on the real cycle-accurate CAM, that CAM-based set
   intersection computes exactly what the merge-based method computes,
3. runs both accelerator cost models over the Table IX dataset
   stand-ins and prints the speedup table.

Run:  python examples/triangle_counting.py
"""

from repro.apps.tc import (
    CamIntersector,
    arithmetic_mean_speedup,
    merge_intersect,
    run_all,
)
from repro.graph import count_triangles, power_law


def demo_intersection() -> None:
    """One edge's set intersection on the actual simulated CAM."""
    graph = power_law(400, 1600, triangle_fraction=0.4, seed=1)
    oriented = graph.oriented()
    # Pick a busy vertex pair.
    src, dst = oriented.edge_endpoints()
    edge = max(
        zip(src.tolist(), dst.tolist()),
        key=lambda edge: oriented.neighbors(edge[0]).size
        + oriented.neighbors(edge[1]).size,
    )
    list_u = oriented.neighbors(edge[0]).tolist()
    list_v = oriented.neighbors(edge[1]).tolist()

    engine = CamIntersector(total_entries=512, block_size=128)
    common_cam, cycles = engine.intersect(list_u, list_v)
    common_merge, steps = merge_intersect(sorted(list_u), sorted(list_v))

    print("single-edge set intersection (cycle-accurate CAM vs merge)")
    print(f"  lists             : {len(list_u)} and {len(list_v)} vertices")
    print(f"  common neighbours : CAM={common_cam}  merge={common_merge}")
    print(f"  CAM cycles        : {cycles} (load + parallel search)")
    print(f"  merge comparisons : {steps} (one per cycle, sequential)")
    assert common_cam == common_merge
    print(f"  graph triangle count (reference): {count_triangles(graph)}")


def table_ix(max_edges: int = 60_000) -> None:
    print("\nTable IX reproduction (synthetic stand-ins, see DESIGN.md)")
    rows = run_all(max_edges=max_edges, seed=0)
    header = (f"  {'dataset':20s} {'edges':>8s} {'triangles':>10s} "
              f"{'ours ms':>9s} {'base ms':>9s} {'speedup':>7s} {'paper':>6s}")
    print(header)
    for row in rows:
        print(f"  {row.dataset:20s} {row.edges:8d} {row.triangles:10d} "
              f"{row.cam_ms:9.3f} {row.baseline_ms:9.3f} "
              f"{row.speedup:7.2f} {row.paper_speedup:6.2f}")
    print(f"  average speedup: {arithmetic_mean_speedup(rows):.2f} "
          f"(paper: 4.92)")


def main() -> None:
    demo_intersection()
    table_ix()


if __name__ == "__main__":
    main()
