#!/usr/bin/env python3
"""Quickstart: build a DSP-based CAM unit, store, search, delete.

Walks the public API end to end on a small cycle-accurate unit:
configuration (Table III), pipelined updates and searches, the runtime
group mechanism for concurrent queries, and the delete-by-content
extension. Every latency printed is a *measured* simulator cycle count.

Run:  python examples/quickstart.py
"""

import repro
from repro.core import CamType, unit_for_entries


def main() -> None:
    # A 256-entry binary CAM: 4 blocks of 64 cells, 32-bit stored
    # words, a 512-bit input bus (16 words per update beat), and two
    # runtime groups so two keys can be searched per cycle.
    config = unit_for_entries(
        256,
        block_size=64,
        data_width=32,
        bus_width=512,
        cam_type=CamType.BINARY,
        default_groups=2,
    )
    session = repro.open_session(config)
    print("configuration")
    print(f"  blocks            : {config.num_blocks} x {config.block.block_size} cells")
    print(f"  DSP slices        : {config.total_entries} (one per cell)")
    print(f"  words per beat    : {config.words_per_beat}")
    print(f"  update latency    : {config.update_latency} cycles")
    print(f"  search latency    : {config.search_latency} cycles")
    print(f"  concurrent queries: {session.unit.num_groups}")

    # --- store a batch of words (pipelined, 16 words/cycle) -----------
    values = [1000 + 7 * i for i in range(100)]
    stats = session.update(values)
    print(f"\nstored {stats.words} words in {stats.cycles} cycles "
          f"({stats.beats} bus beats)")

    # --- pipelined multi-query search ---------------------------------
    probes = [1007, 1351, 9999, 1000, 1693, 4242]
    results = session.search(probes)
    print(f"searched {len(probes)} keys in "
          f"{session.last_search_stats.cycles} cycles "
          f"(2 keys/cycle, {config.search_latency}-cycle latency):")
    for probe, result in zip(probes, results):
        where = f"address {result.address}" if result.hit else "miss"
        print(f"  {probe:>6} -> {where}")

    # --- delete-by-content (extension) ---------------------------------
    deleted = session.delete(1351)
    print(f"\ndelete(1351): invalidated {deleted.match_count} entr"
          f"{'y' if deleted.match_count == 1 else 'ies'}")
    print(f"  contains(1351) now: {session.contains(1351)}")

    # --- runtime regrouping --------------------------------------------
    session.set_groups(4)
    session.update(values[:32])
    results = session.search([values[0]] * 4)
    print(f"\nregrouped to M=4: {len(results)} concurrent queries, "
          f"all agree: {len({r.address for r in results}) == 1}")
    print(f"\ntotal simulated cycles: {session.cycle}")


if __name__ == "__main__":
    main()
