#!/usr/bin/env python3
"""Networking on the TCAM: LPM routing and ACL classification.

The paper's introduction motivates CAMs with network processing; this
example builds both canonical TCAM applications on the cycle-accurate
unit: a longest-prefix-match IPv4 router (ternary entries, priority by
prefix length) and a firewall ACL whose port ranges expand through the
aligned-power-of-two restriction of the DSP MASK.

Run:  python examples/packet_classifier.py
"""

from repro.apps.packet import (
    LpmRouter,
    Packet,
    PacketClassifier,
    Rule,
    expand_range,
)


def routing_demo() -> None:
    print("longest-prefix-match routing (TCAM)")
    router = LpmRouter(capacity=256, block_size=64, concurrent_lookups=2)
    table = [
        ("0.0.0.0/0", "upstream"),
        ("10.0.0.0/8", "dc-core"),
        ("10.1.0.0/16", "pod-1"),
        ("10.1.2.0/24", "rack-42"),
        ("10.1.2.128/25", "service-mesh"),
        ("192.168.0.0/16", "office"),
    ]
    for prefix, hop in table:
        router.add_route(prefix, hop)
    entries = router.compile()
    print(f"  {len(table)} routes compiled into {entries} CAM entries, "
          f"{router.lookup_cycles}-cycle lookups")

    flows = ["10.1.2.200", "10.1.2.10", "10.1.77.3", "10.200.0.1",
             "192.168.4.4", "1.1.1.1"]
    routes = router.lookup_batch(flows)
    for address, route in zip(flows, routes):
        print(f"  {address:>14} -> {route.next_hop:12s} ({route.cidr})")


def acl_demo() -> None:
    print("\nfirewall ACL (TCAM with range expansion)")
    lo, hi = 1024, 49151  # registered ports
    chunks = expand_range(lo, hi, 16)
    print(f"  port range [{lo}, {hi}] expands into {len(chunks)} "
          "aligned power-of-two CAM entries:")
    print(f"    {chunks[:4]} ...")

    acl = PacketClassifier(capacity=256, block_size=64)
    rules = [
        Rule("drop-telnet", "deny", protocol=6, port_range=(23, 23)),
        Rule("web", "allow", protocol=6, port_range=(80, 443)),
        Rule("dns", "allow", protocol=17, port_range=(53, 53)),
        Rule("ephemeral", "allow", protocol=6, port_range=(lo, hi)),
        Rule("default-deny", "deny"),
    ]
    for rule in rules:
        used = acl.add_rule(rule)
        print(f"  rule {rule.name:14s} -> {used} CAM entr"
              f"{'y' if used == 1 else 'ies'}")
    print(f"  total: {acl.num_rules} rules in {acl.entries_used} entries")

    traffic = [
        ("ssh-scan", Packet(protocol=6, src_tag=9, dst_tag=1, dst_port=23)),
        ("https", Packet(protocol=6, src_tag=2, dst_tag=1, dst_port=443)),
        ("dns-query", Packet(protocol=17, src_tag=2, dst_tag=1, dst_port=53)),
        ("high-port", Packet(protocol=6, src_tag=2, dst_tag=1, dst_port=30000)),
        ("weird-udp", Packet(protocol=17, src_tag=2, dst_tag=1, dst_port=9999)),
    ]
    verdicts = acl.classify_batch([packet for _, packet in traffic])
    print("  classification:")
    for (label, _), rule in zip(traffic, verdicts):
        print(f"    {label:10s} -> {rule.action:5s} (rule {rule.name})")


def main() -> None:
    routing_demo()
    acl_demo()


if __name__ == "__main__":
    main()
