#!/usr/bin/env python3
"""Execution engines: the vectorized batch fast path and the audit mode.

Every session-level consumer can pick an execution engine:

- ``engine="cycle"`` (default) runs the register-accurate simulator;
- ``engine="batch"`` runs the vectorized NumPy engine with analytic
  cycle accounting -- bit-identical results, orders of magnitude
  faster wall-clock;
- ``engine="audit"`` runs the batch engine while replaying a seeded
  sample of episodes through a cycle-accurate shadow session,
  asserting bit-exact result and cycle agreement as it goes.

This example times the same workload on the cycle and batch engines,
shows the audit engine catching an injected fast-path corruption, and
runs the three-way differential checker from
:mod:`repro.core.verification`.

Run:  python examples/batch_audit.py
"""

import time

import repro
from repro.core import check_three_way, unit_for_entries
from repro.errors import AuditError


def main() -> None:
    config = unit_for_entries(
        256, block_size=64, data_width=32, bus_width=512, default_groups=2,
    )
    # Replicated mode: each of the 2 groups holds 128 entries.
    words = [1000 + 7 * i for i in range(100)]
    probes = [words[i] for i in range(0, 100, 5)] + [1, 2, 3]

    # --- identical results, identical cycle counts, faster wall-clock --
    print("engine comparison (same workload)")
    outcomes = {}
    for engine in ("cycle", "batch"):
        session = repro.open_session(config, engine=engine)
        start = time.perf_counter()
        session.update(words)
        hits = sum(session.search_one(p).hit for p in probes)
        session.delete(words[0])
        elapsed = time.perf_counter() - start
        outcomes[engine] = (hits, session.cycle)
        print(f"  {engine:5s}: {hits} hits, {session.cycle} simulated "
              f"cycles, {elapsed * 1e3:8.2f} ms wall-clock")
    assert outcomes["cycle"] == outcomes["batch"]
    print("  -> bit-identical results and cycle accounting\n")

    # --- the audit engine: batch speed, sampled cycle-accurate shadow --
    print("audit engine (every episode shadowed: audit_sample=1.0)")
    session = repro.open_session(config, engine="audit", audit_sample=1.0,
                                 audit_seed=42)
    session.update(words[:50])
    for probe in (words[3], words[7], 999):
        session.search_one(probe)
    report = session.audit_report
    print(f"  {report.summary()}\n")

    # Corrupt the fast path behind the audit's back: the very next
    # audited search diverges from the cycle-accurate shadow and raises.
    print("injecting a single-bit corruption into the fast path...")
    session._stores[0].values[3] ^= 1
    try:
        session.search_one(words[3])
    except AuditError as exc:
        print(f"  caught: {exc}\n")

    # --- the three-way differential checker ----------------------------
    print("three-way differential (cycle vs batch vs golden reference)")
    report = check_three_way(config, operations=60, seed=7)
    print(f"  {report.summary()}")
    assert report.passed


if __name__ == "__main__":
    main()
